(* Workload circuits: the paper's op-amp and bias cell plus the supporting
   fixtures, verified against their design intents. *)

let check_close ?(tol = 1e-9) msg expected actual =
  let scale = Float.max 1. (Float.abs expected) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.9g, got %.9g" msg expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. scale)

(* ---------- op-amp ---------- *)

let test_opamp_operating_point () =
  let circ = Workloads.Opamp_2mhz.buffer () in
  let op = Engine.Dcop.solve (Engine.Mna.compile circ) in
  (* The buffer regulates the output to the input common mode. *)
  check_close ~tol:2e-3 "output at vcm" 2.5
    (Engine.Dcop.node_v op Workloads.Opamp_2mhz.node_out);
  (* Every MOS transistor of the signal path sits in saturation. *)
  List.iter
    (fun name ->
      match List.assoc name (Engine.Dcop.device_ops op) with
      | Engine.Dcop.Op_mos { region; _ } ->
        Alcotest.(check string)
          (Printf.sprintf "%s region" name)
          "saturation" region
      | _ -> Alcotest.failf "%s is not a MOSFET" name
      | exception Not_found -> Alcotest.failf "%s missing" name)
    [ "M1"; "M2"; "M3"; "M4"; "M5"; "M6"; "M7" ]

let test_opamp_buffer_gain () =
  let circ = Workloads.Opamp_2mhz.buffer () in
  let ac = Engine.Ac.run ~sweep:(Numerics.Sweep.List [| 100.; 10e3 |]) circ in
  let w = Engine.Ac.v ac Workloads.Opamp_2mhz.node_out in
  Array.iter
    (fun h -> check_close ~tol:1e-3 "unity buffer" 1. (Numerics.Cx.mag h))
    w.Engine.Waveform.Freq.h

let test_opamp_headline_numbers () =
  (* The tuned defaults reproduce the paper's example: peak ~ -31 at
     ~3.2 MHz, zeta ~ 0.18, phase margin ~ 20 deg. *)
  let circ = Workloads.Opamp_2mhz.buffer () in
  let r =
    Stability.Analysis.single_node circ Workloads.Opamp_2mhz.node_out
  in
  match r.Stability.Analysis.dominant with
  | Some d ->
    Alcotest.(check bool)
      (Printf.sprintf "peak %.1f in [-36, -26]" d.Stability.Peaks.value)
      true
      (d.Stability.Peaks.value > -36. && d.Stability.Peaks.value < -26.);
    Alcotest.(check bool)
      (Printf.sprintf "fn %.3g within 15%% of 3.16 MHz" d.Stability.Peaks.freq)
      true
      (Float.abs ((d.Stability.Peaks.freq /. 3.16e6) -. 1.) < 0.15);
    (match d.Stability.Peaks.phase_margin_deg with
     | Some pm ->
       Alcotest.(check bool)
         (Printf.sprintf "PM %.1f in [17, 23]" pm)
         true (pm > 17. && pm < 23.)
     | None -> Alcotest.fail "no PM estimate")
  | None -> Alcotest.fail "main-loop pole not found"

let test_opamp_three_way_consistency () =
  (* Paper section 3: stability plot, open-loop margins and transient
     overshoot must tell one story. *)
  let circ = Workloads.Opamp_2mhz.buffer () in
  let r =
    Stability.Analysis.single_node circ Workloads.Opamp_2mhz.node_out
  in
  let plot_pm =
    match r.Stability.Analysis.dominant with
    | Some { Stability.Peaks.phase_margin_deg = Some pm; _ } -> pm
    | _ -> Alcotest.fail "no plot PM"
  in
  let dev, term = Workloads.Opamp_2mhz.feedback_break in
  let lg =
    Engine.Loopgain.middlebrook
      ~sweep:(Numerics.Sweep.decade 1e3 1e9 60)
      circ ~device:dev ~terminal:term
  in
  let loop_pm =
    match (Engine.Loopgain.margins lg).Engine.Measure.phase_margin_deg with
    | Some pm -> pm
    | None -> Alcotest.fail "no loop PM"
  in
  check_close ~tol:0.08 "plot PM vs loop PM" loop_pm plot_pm;
  (* Both loop-gain methods agree (the break is at a MOS gate). *)
  let lc =
    Engine.Loopgain.lc_break
      ~sweep:(Numerics.Sweep.decade 1e3 1e9 60)
      circ ~device:dev ~terminal:term
  in
  (match (Engine.Loopgain.margins lc).Engine.Measure.phase_margin_deg with
   | Some pm -> check_close ~tol:2e-2 "lc-break PM" loop_pm pm
   | None -> Alcotest.fail "no lc PM")

let test_opamp_transient_overshoot () =
  let circ = Workloads.Opamp_2mhz.buffer () in
  let tr = Engine.Transient.run ~tstop:8e-6 ~tstep:2e-9 circ in
  let w = Engine.Transient.v tr Workloads.Opamp_2mhz.node_out in
  let m = Engine.Measure.step_metrics ~initial:2.5 ~final:2.55 w in
  (* zeta ~ 0.18 predicts ~56 %; slewing shaves large-signal overshoot, so
     accept the paper-like 40-60 % band. *)
  Alcotest.(check bool)
    (Printf.sprintf "overshoot %.0f%% in [40, 60]"
       m.Engine.Measure.overshoot_pct)
    true
    (m.Engine.Measure.overshoot_pct > 40.
     && m.Engine.Measure.overshoot_pct < 60.)

let test_bjt_opamp () =
  (* The bipolar sibling: buffer regulates, and the stability-plot phase
     margin agrees with Middlebrook to a degree. *)
  let circ = Workloads.Opamp_bjt.buffer () in
  let op = Engine.Dcop.solve (Engine.Mna.compile circ) in
  check_close ~tol:2e-3 "output at vcm" 5.
    (Engine.Dcop.node_v op Workloads.Opamp_bjt.node_out);
  let ac = Engine.Ac.run ~sweep:(Numerics.Sweep.List [| 100. |]) circ in
  check_close ~tol:1e-3 "unity buffer" 1.
    (Numerics.Cx.mag
       (Engine.Ac.v ac Workloads.Opamp_bjt.node_out)
         .Engine.Waveform.Freq.h.(0));
  let d =
    (Stability.Analysis.single_node circ Workloads.Opamp_bjt.node_out)
      .Stability.Analysis.dominant
    |> Option.get
  in
  let plot_pm = Option.get d.Stability.Peaks.phase_margin_deg in
  let dev, term = Workloads.Opamp_bjt.feedback_break in
  let mb =
    Engine.Loopgain.middlebrook ~sweep:(Numerics.Sweep.decade 1e3 1e9 40)
      circ ~device:dev ~terminal:term
  in
  let mb_pm =
    Option.get (Engine.Loopgain.margins mb).Engine.Measure.phase_margin_deg
  in
  check_close ~tol:5e-2 "plot PM = Middlebrook PM" mb_pm plot_pm;
  Alcotest.(check bool)
    (Printf.sprintf "moderate margin (%.0f)" plot_pm)
    true
    (plot_pm > 30. && plot_pm < 55.)

let test_tracking_cload () =
  (* Sweeping the BJT buffer's load capacitor: more load, less damping;
     critical_value finds where zeta crosses 0.3. *)
  let circ = Workloads.Opamp_bjt.buffer () in
  let values = [| 47e-12; 100e-12; 220e-12; 470e-12; 1e-9 |] in
  let traj =
    Stability.Tracking.component circ ~device:"CLOAD" ~values ~node:"out"
  in
  let zetas =
    List.filter_map
      (fun (_, p) ->
        Option.bind p (fun (q : Stability.Tracking.point) -> q.zeta))
      traj
  in
  Alcotest.(check int) "all points have a pair" 5 (List.length zetas);
  let monotone = ref true in
  let rec chk = function
    | a :: (b :: _ as rest) ->
      if b > a +. 1e-6 then monotone := false;
      chk rest
    | _ -> ()
  in
  chk zetas;
  Alcotest.(check bool) "zeta falls with load" true !monotone;
  match Stability.Tracking.critical_value traj ~zeta_target:0.3 with
  | Some v ->
    Alcotest.(check bool)
      (Printf.sprintf "critical load %.3g in range" v)
      true
      (v > 100e-12 && v < 1e-9)
  | None -> Alcotest.fail "no critical value found"

(* ---------- bias cell ---------- *)

let test_bias_zero_tc () =
  let i27 = Workloads.Bias_zero_tc.reference_current ~temp_c:27. () in
  Alcotest.(check bool) "current plausible" true (i27 > 50e-6 && i27 < 150e-6);
  List.iter
    (fun t ->
      let i = Workloads.Bias_zero_tc.reference_current ~temp_c:t () in
      Alcotest.(check bool)
        (Printf.sprintf "flat at %g C (%.1f%%)" t
           (100. *. ((i /. i27) -. 1.)))
        true
        (Float.abs ((i /. i27) -. 1.) < 0.03))
    [ -40.; 0.; 85.; 125. ]

let test_bias_local_loop_and_fix () =
  let line = Workloads.Bias_zero_tc.node_bias_line in
  let before =
    Stability.Analysis.single_node (Workloads.Bias_zero_tc.cell ()) line
  in
  let peak_before =
    match before.Stability.Analysis.dominant with
    | Some d -> d
    | None -> Alcotest.fail "no local loop found"
  in
  Alcotest.(check bool)
    (Printf.sprintf "underdamped local loop (%.2f)"
       peak_before.Stability.Peaks.value)
    true
    (peak_before.Stability.Peaks.value < -2.);
  Alcotest.(check bool)
    (Printf.sprintf "tens of MHz (%.3g)" peak_before.Stability.Peaks.freq)
    true
    (peak_before.Stability.Peaks.freq > 10e6
     && peak_before.Stability.Peaks.freq < 100e6);
  (* The paper's fix: 1 pF at Q3's collector. *)
  let fixed =
    Workloads.Bias_zero_tc.cell
      ~params:
        { Workloads.Bias_zero_tc.default_params with compensation = 1e-12 }
      ()
  in
  let after = Stability.Analysis.single_node fixed line in
  match after.Stability.Analysis.dominant with
  | Some d ->
    Alcotest.(check bool)
      (Printf.sprintf "damped after fix (%.2f)" d.Stability.Peaks.value)
      true
      (d.Stability.Peaks.value > -1.2)
  | None -> ()

let test_bias_startup_state_rejected () =
  (* Without the nodeset the cell has a zero-current state; with it, the
     conducting state must be selected at every library temperature. *)
  List.iter
    (fun t ->
      let i = Workloads.Bias_zero_tc.reference_current ~temp_c:t () in
      Alcotest.(check bool)
        (Printf.sprintf "conducting at %g C" t)
        true (i > 20e-6))
    [ -40.; 27.; 125. ]

(* ---------- followers and mirrors ---------- *)

let test_follower_rings_with_source_resistance () =
  let peak_at rsource =
    let circ = Workloads.Follower.emitter_follower ~rsource () in
    match
      (Stability.Analysis.single_node circ "out").Stability.Analysis.dominant
    with
    | Some d -> d.Stability.Peaks.value
    | None -> 0.
  in
  let damped = peak_at 100. in
  let ringing = peak_at 3.3e3 in
  Alcotest.(check bool)
    (Printf.sprintf "100R source benign (%.2f)" damped)
    true (damped > -1.);
  Alcotest.(check bool)
    (Printf.sprintf "3.3k source rings (%.2f)" ringing)
    true (ringing < -3.)

let test_source_follower_runs () =
  let circ = Workloads.Follower.source_follower () in
  let r = Stability.Analysis.single_node circ "out" in
  Alcotest.(check bool) "analysis completes" true
    (List.length r.Stability.Analysis.peaks >= 0)

let test_mirrors_bias_correctly () =
  let check_mirror name circ out expected_v tol =
    let op = Engine.Dcop.solve (Engine.Mna.compile circ) in
    check_close ~tol (name ^ " output") expected_v (Engine.Dcop.node_v op out)
  in
  (* 100 uA into RL = 25k: output at 5 - 2.5 = 2.5 V. *)
  check_mirror "simple" (Workloads.Mirrors.simple_mirror ()) "out" 2.5 0.1;
  check_mirror "wilson" (Workloads.Mirrors.wilson_mirror ()) "out" 2.5 0.1;
  check_mirror "cascode"
    (Workloads.Mirrors.cascode_mirror_with_line ())
    "out" 3.0 0.15

let test_filters_analytic () =
  check_close ~tol:1e-12 "rc pole" (1. /. (2. *. Float.pi *. 1e-6))
    (Workloads.Filters.rc_lowpass_pole ~r:1e3 ~c:1e-9 ());
  let fn, zeta = Workloads.Filters.series_rlc_theory ~r:20. ~l:1e-3 ~c:1e-9 () in
  check_close ~tol:1e-9 "series fn" (1. /. (2. *. Float.pi *. sqrt 1e-12)) fn;
  check_close ~tol:1e-9 "series zeta" (10. *. sqrt (1e-9 /. 1e-3)) zeta

let () =
  Alcotest.run "workloads"
    [ ("opamp",
       [ Alcotest.test_case "operating point" `Quick
           test_opamp_operating_point;
         Alcotest.test_case "buffer gain" `Quick test_opamp_buffer_gain;
         Alcotest.test_case "headline numbers" `Quick
           test_opamp_headline_numbers;
         Alcotest.test_case "three-way consistency" `Quick
           test_opamp_three_way_consistency;
         Alcotest.test_case "transient overshoot" `Quick
           test_opamp_transient_overshoot ]);
      ("bjt-opamp",
       [ Alcotest.test_case "bipolar buffer" `Slow test_bjt_opamp;
         Alcotest.test_case "load-cap tracking" `Slow test_tracking_cload ]);
      ("bias",
       [ Alcotest.test_case "zero TC" `Quick test_bias_zero_tc;
         Alcotest.test_case "local loop and paper fix" `Quick
           test_bias_local_loop_and_fix;
         Alcotest.test_case "startup state rejected" `Quick
           test_bias_startup_state_rejected ]);
      ("followers",
       [ Alcotest.test_case "EF rings with source R" `Quick
           test_follower_rings_with_source_resistance;
         Alcotest.test_case "source follower" `Quick
           test_source_follower_runs ]);
      ("mirrors-and-filters",
       [ Alcotest.test_case "mirror bias points" `Quick
           test_mirrors_bias_correctly;
         Alcotest.test_case "filter closed forms" `Quick
           test_filters_analytic ]) ]
