(* Netlist model, expression evaluator, SPICE parser, topology checks and
   transforms. *)

open Circuit

let check_close ?(tol = 1e-9) msg expected actual =
  let scale = Float.max 1. (Float.abs expected) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.9g, got %.9g" msg expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. scale)

(* ---------- expressions ---------- *)

let test_expr_basic () =
  List.iter
    (fun (s, v) -> check_close s v (Expr.eval s))
    [ ("1+2*3", 7.); ("(1+2)*3", 9.); ("2^10", 1024.); ("-2^2", -4.);
      ("10/4", 2.5); ("1k+1", 1001.); ("sqrt(16)", 4.);
      ("max(1,min(5,3))", 3.); ("2*pi", 2. *. Float.pi);
      ("exp(0)", 1.); ("ln(e)", 1.); ("log(100)", 2.);
      ("pow(2,0.5)", sqrt 2.); ("abs(-3)", 3.) ]

let test_expr_env () =
  let env = [ ("Rload", 2e3); ("gain", 10.) ] in
  check_close "env vars" 2.2e4 (Expr.eval ~env "rload*gain+2k");
  check_close "value braces" 1e3 (Expr.value ~env "{Rload/2}");
  check_close "value plain" 4.7e-12 (Expr.value ~env "4.7p");
  check_close "value bare name" 2e3 (Expr.value ~env "rload")

let test_expr_errors () =
  Alcotest.(check bool) "unknown name" true (Expr.eval_opt "nosuch" = None);
  Alcotest.(check bool) "syntax" true (Expr.eval_opt "1+" = None);
  Alcotest.(check bool) "arity" true (Expr.eval_opt "sqrt(1,2)" = None)

(* ---------- netlist builder ---------- *)

let test_builder_duplicate () =
  let c = Netlist.empty () in
  let c = Netlist.resistor c "R1" "a" "b" 1e3 in
  Alcotest.(check bool) "duplicate rejected" true
    (try ignore (Netlist.resistor c "r1" "c" "d" 1.); false
     with Invalid_argument _ -> true)

let test_node_names () =
  let c = Netlist.empty () in
  let c = Netlist.resistor c "R1" "a" "b" 1. in
  let c = Netlist.resistor c "R2" "b" "0" 1. in
  let c = Netlist.resistor c "R3" "b" "GND" 1. in
  Alcotest.(check (list string)) "non-ground nets" [ "a"; "b" ]
    (Netlist.node_names c)

(* ---------- parser ---------- *)

let sample_netlist = {|simple divider test
* a comment line
.param rtop=1k rbot={rtop*3}
V1 in 0 DC 10 AC 1
R1 in mid {rtop}
R2 mid 0 {rbot}   ; trailing comment
C1 mid 0 10p IC=0.5
.model DX d (is=1e-14 n=1.05)
D1 mid 0 DX
.ac dec 10 1 1meg
.end
|}

let test_parse_basic () =
  let c = Parser.parse_string sample_netlist in
  Alcotest.(check string) "title" "simple divider test" (Netlist.title c);
  Alcotest.(check int) "device count" 5 (List.length (Netlist.devices c));
  (match Netlist.find_device c "R2" with
   | Some (Netlist.Resistor { r; _ }) -> check_close "param expr" 3e3 r
   | _ -> Alcotest.fail "R2 missing");
  (match Netlist.find_device c "V1" with
   | Some (Netlist.Vsource { spec; _ }) ->
     check_close "dc" 10. spec.dc;
     check_close "ac" 1. spec.ac_mag
   | _ -> Alcotest.fail "V1 missing");
  (match Netlist.find_device c "C1" with
   | Some (Netlist.Capacitor { c = cv; ic; _ }) ->
     check_close "cap" 10e-12 cv;
     check_close "ic" 0.5 (Option.get ic)
   | _ -> Alcotest.fail "C1 missing");
  (match Netlist.find_model c "DX" with
   | Some m -> check_close "model param" 1.05 (Netlist.model_param m "n" ~default:0.)
   | None -> Alcotest.fail "model DX missing");
  match Netlist.directives c with
  | [ Netlist.Ac _ ] -> ()
  | _ -> Alcotest.fail "expected one .ac directive"

let test_parse_continuation () =
  let c =
    Parser.parse_string
      "V1 in 0 DC 1\n+ AC 2 45\nR1 in 0 1k\n"
  in
  match Netlist.find_device c "V1" with
  | Some (Netlist.Vsource { spec; _ }) ->
    check_close "dc" 1. spec.dc;
    check_close "ac mag" 2. spec.ac_mag;
    check_close "ac phase" 45. spec.ac_phase_deg
  | _ -> Alcotest.fail "V1 missing"

let test_parse_sources () =
  let c =
    Parser.parse_string
      "V1 a 0 PULSE(0 5 1u 2n 3n 4u 10u)\nV2 b 0 SIN(1 2 1meg)\n\
       V3 c 0 PWL(0 0 1u 5 2u 5)\nR1 a 0 1\nR2 b 0 1\nR3 c 0 1\n"
  in
  (match Netlist.find_device c "V1" with
   | Some (Netlist.Vsource { spec = { wave = Some (Netlist.Pulse p); _ }; _ })
     ->
     check_close "v2" 5. p.v2;
     check_close "delay" 1e-6 p.delay;
     check_close "width" 4e-6 p.width
   | _ -> Alcotest.fail "V1 pulse missing");
  (match Netlist.find_device c "V2" with
   | Some (Netlist.Vsource { spec = { wave = Some (Netlist.Sine s); _ }; _ })
     ->
     check_close "freq" 1e6 s.freq;
     check_close "ampl" 2. s.ampl
   | _ -> Alcotest.fail "V2 sine missing");
  match Netlist.find_device c "V3" with
  | Some (Netlist.Vsource { spec = { wave = Some (Netlist.Pwl pts); _ }; _ })
    -> Alcotest.(check int) "pwl corners" 3 (List.length pts)
  | _ -> Alcotest.fail "V3 pwl missing"

let subckt_netlist = {|subckt flattening
.subckt divider top bot mid ratio=2
R1 top mid {1k*ratio}
R2 mid bot 1k
.ends
V1 in 0 DC 9
X1 in 0 tap divider ratio=8
R3 tap 0 1meg
.end
|}

let test_parse_subckt () =
  let c = Parser.parse_string subckt_netlist in
  (match Netlist.find_device c "X1.R1" with
   | Some (Netlist.Resistor { r; n1; n2; _ }) ->
     check_close "override param" 8e3 r;
     Alcotest.(check string) "port mapped" "in" n1;
     Alcotest.(check string) "internal net kept by name" "tap" n2
   | _ -> Alcotest.fail "X1.R1 missing");
  match Netlist.find_device c "X1.R2" with
  | Some (Netlist.Resistor { n1; n2; _ }) ->
    Alcotest.(check string) "mid port" "tap" n1;
    Alcotest.(check string) "ground port" "0" n2
  | _ -> Alcotest.fail "X1.R2 missing"

let test_parse_roundtrip () =
  let c = Parser.parse_string sample_netlist in
  let again = Parser.parse_string (Netlist.to_spice c) in
  Alcotest.(check int) "device count preserved"
    (List.length (Netlist.devices c))
    (List.length (Netlist.devices again));
  match Netlist.find_device again "R2" with
  | Some (Netlist.Resistor { r; _ }) -> check_close ~tol:1e-3 "value" 3e3 r
  | _ -> Alcotest.fail "R2 missing after roundtrip"

let test_parse_errors () =
  let expect_error s =
    match Parser.parse_string s with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  (* Leading comment keeps the first real line from being read as a SPICE
     title. *)
  expect_error "* t\nR1 a b\n";              (* missing value *)
  expect_error "* t\nR1 a b 1k\nR1 c d 2k\n"; (* duplicate *)
  expect_error "* t\nZ1 a b 1k 2k\n";        (* unknown element *)
  expect_error "* t\n.subckt foo a\nR1 a 0 1\n"; (* missing .ends *)
  expect_error "* t\nX1 a b nosuch\nR1 a 0 1k\n" (* unknown subckt *)

let test_parse_mutual () =
  let c =
    Parser.parse_string
      "* t\nL1 a 0 1u\nL2 b 0 4u\nK1 L1 L2 0.5\nR1 a b 1k\n"
  in
  (match Netlist.find_device c "K1" with
   | Some (Netlist.Mutual { l1; l2; k; _ }) ->
     Alcotest.(check string) "l1" "L1" l1;
     Alcotest.(check string) "l2" "L2" l2;
     check_close "k" 0.5 k
   | _ -> Alcotest.fail "K1 missing");
  (* |k| >= 1 is rejected. *)
  Alcotest.(check bool) "k >= 1 rejected" true
    (match
       Parser.parse_string "* t\nL1 a 0 1u\nL2 b 0 1u\nK1 L1 L2 1.5\n"
     with
     | exception Parser.Parse_error _ -> true
     | _ -> false);
  (* Compilation resolves M = k sqrt(L1 L2). *)
  let mna = Engine.Mna.compile c in
  Alcotest.(check bool) "compiles" true (mna.Engine.Mna.size > 0)

let test_resistor_tc () =
  let c =
    Parser.parse_string "* t\nV1 a 0 DC 1\nR1 a 0 1k TC1=2e-3 TC2=1e-6\n"
  in
  (match Netlist.find_device c "R1" with
   | Some (Netlist.Resistor { tc1; tc2; _ }) ->
     check_close "tc1" 2e-3 tc1;
     check_close "tc2" 1e-6 tc2
   | _ -> Alcotest.fail "R1 missing");
  (* The compiled conductance tracks temperature: at 127 C,
     R = 1k (1 + 0.2 + 0.01) = 1.21k. *)
  let at_t t =
    let op = Engine.Dcop.solve (Engine.Mna.compile (Netlist.with_temp t c)) in
    Engine.Dcop.branch_current op "V1"
  in
  check_close ~tol:1e-9 "nominal current" (-1e-3) (at_t 27.);
  check_close ~tol:1e-6 "hot current" (-1. /. 1210.) (at_t 127.)

let test_parse_options () =
  let c =
    Parser.parse_string
      "* t\n.options gmin=1e-10 reltol=1e-4\nR1 a 0 1k\nV1 a 0 DC 1\n"
  in
  check_close "gmin" 1e-10 (Netlist.option_value c "gmin" ~default:0.);
  check_close "reltol" 1e-4 (Netlist.option_value c "reltol" ~default:0.);
  check_close "absent uses default" 42.
    (Netlist.option_value c "nosuch" ~default:42.);
  (* The DC solver picks them up. *)
  let o = Engine.Dcop.circuit_options c in
  check_close "solver gmin" 1e-10 o.Engine.Dcop.gmin;
  check_close "solver reltol" 1e-4 o.Engine.Dcop.reltol

let test_parse_include () =
  let dir = Filename.temp_file "inc" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let sub = Filename.concat dir "models.inc" in
  let oc = open_out sub in
  output_string oc ".model DX d (is=2e-14)\nR9 shared 0 9k\n";
  close_out oc;
  let main = Filename.concat dir "top.sp" in
  let oc = open_out main in
  output_string oc
    "top deck\n.include models.inc\nV1 in 0 DC 1\nR1 in shared 1k\nD1 shared 0 DX\n.end\n";
  close_out oc;
  let c = Parser.parse_file main in
  Sys.remove sub;
  Sys.remove main;
  Unix.rmdir dir;
  (match Netlist.find_model c "DX" with
   | Some m -> check_close "included model" 2e-14
                 (Netlist.model_param m "is" ~default:0.)
   | None -> Alcotest.fail "included model missing");
  Alcotest.(check bool) "included device present" true
    (Netlist.find_device c "R9" <> None)

(* ---------- topology ---------- *)

let test_topology_checks () =
  let c = Netlist.empty () in
  let c = Netlist.vsource c "V1" "in" "0" (Netlist.dc_source 1.) in
  let c = Netlist.resistor c "R1" "in" "out" 1e3 in
  let c = Netlist.resistor c "R2" "out" "0" 1e3 in
  Alcotest.(check (list string)) "clean circuit" []
    (List.map (Format.asprintf "%a" Topology.pp_issue) (Topology.check c));
  (* Dangling node: one-ended resistor chain. *)
  let c2 = Netlist.resistor c "R3" "out" "nowhere" 1e3 in
  Alcotest.(check bool) "dangling flagged" true
    (List.exists
       (function Topology.Dangling_node "nowhere" -> true | _ -> false)
       (Topology.check c2));
  (* Cap-only path to ground -> No_dc_path. *)
  let c3 = Netlist.empty () in
  let c3 = Netlist.vsource c3 "V1" "in" "0" (Netlist.dc_source 1.) in
  let c3 = Netlist.resistor c3 "R1" "in" "a" 1e3 in
  let c3 = Netlist.capacitor c3 "C1" "a" "b" 1e-12 in
  let c3 = Netlist.resistor c3 "R2" "b" "0" 1e3 in
  ignore c3;
  let issues = Topology.check c3 in
  Alcotest.(check bool) "isolated-by-cap segment is still AC-connected" true
    (not
       (List.exists
          (function Topology.Disconnected _ -> true | _ -> false)
          issues))

let test_no_ground () =
  let c = Netlist.empty () in
  let c = Netlist.resistor c "R1" "a" "b" 1e3 in
  Alcotest.(check bool) "no ground flagged" true
    (List.mem Topology.No_ground (Topology.check c))

(* ---------- transforms ---------- *)

let test_zero_ac () =
  let c = Netlist.empty () in
  let c = Netlist.vsource c "V1" "in" "0" (Netlist.ac_source ~dc:5. 1.) in
  let c = Netlist.isource c "I1" "in" "0" (Netlist.ac_source 2.) in
  let z = Transform.zero_ac_sources c in
  List.iter
    (fun d ->
      match d with
      | Netlist.Vsource { spec; _ } | Netlist.Isource { spec; _ } ->
        check_close "ac zeroed" 0. spec.ac_mag
      | _ -> ())
    (Netlist.devices z);
  match Netlist.find_device z "V1" with
  | Some (Netlist.Vsource { spec; _ }) -> check_close "dc kept" 5. spec.dc
  | _ -> Alcotest.fail "V1 missing"

let test_probe_attach_remove () =
  let c = Netlist.empty () in
  let c = Netlist.resistor c "R1" "n1" "0" 1e3 in
  let probed = Transform.with_ac_current_probe c "n1" in
  (match Netlist.find_device probed Transform.probe_name with
   | Some (Netlist.Isource { nneg; spec; _ }) ->
     Alcotest.(check string) "probe target" "n1" nneg;
     check_close "probe magnitude" 1. spec.ac_mag
   | _ -> Alcotest.fail "probe missing");
  let removed = Transform.remove_probe probed in
  Alcotest.(check int) "restored device count" 1
    (List.length (Netlist.devices removed))

let test_split_terminal () =
  let c = Netlist.empty () in
  let c = Netlist.resistor c "R1" "a" "b" 1e3 in
  let c = Netlist.resistor c "R2" "b" "0" 1e3 in
  let c' = Transform.split_terminal c ~device:"R2" ~terminal:0
             ~new_node:"bx" in
  (match Netlist.find_device c' "R2" with
   | Some (Netlist.Resistor { n1; n2; _ }) ->
     Alcotest.(check string) "moved" "bx" n1;
     Alcotest.(check string) "other kept" "0" n2
   | _ -> Alcotest.fail "R2 missing");
  (* R1 must keep its terminal on the original net. *)
  match Netlist.find_device c' "R1" with
  | Some (Netlist.Resistor { n2; _ }) ->
    Alcotest.(check string) "upstream untouched" "b" n2
  | _ -> Alcotest.fail "R1 missing"

let test_split_terminal_repeated_nets () =
  (* A device with both terminals on the same net: only the selected one
     moves. *)
  let c = Netlist.empty () in
  let c = Netlist.resistor c "R1" "x" "x" 1e3 in
  let c' = Transform.split_terminal c ~device:"R1" ~terminal:1
             ~new_node:"y" in
  match Netlist.find_device c' "R1" with
  | Some (Netlist.Resistor { n1; n2; _ }) ->
    Alcotest.(check string) "terminal 0 kept" "x" n1;
    Alcotest.(check string) "terminal 1 moved" "y" n2
  | _ -> Alcotest.fail "R1 missing"

let test_insert_series_vsource () =
  let c = Netlist.empty () in
  let c = Netlist.vsource c "V1" "in" "0" (Netlist.dc_source 1.) in
  let c = Netlist.resistor c "R1" "in" "out" 1e3 in
  let c = Netlist.resistor c "R2" "out" "0" 1e3 in
  let c', nn =
    Transform.insert_series_vsource c ~device:"R2" ~terminal:0
      ~vname:"vamm" ~spec:(Netlist.dc_source 0.)
  in
  (* The circuit must still solve and the ammeter read the R2 current. *)
  let op = Engine.Dcop.solve (Engine.Mna.compile c') in
  check_close ~tol:1e-6 "ammeter current" 0.5e-3
    (Engine.Dcop.branch_current op "vamm");
  Alcotest.(check bool) "fresh node name returned" true (nn <> "out")

(* The reader must never escape with anything but Parse_error on random
   input: fuzz with printable garbage and with mutations of a real deck. *)
let prop_parser_total =
  QCheck.Test.make ~name:"parser raises only Parse_error" ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed; 77 |] in
      let garbage () =
        String.init
          (Random.State.int st 200)
          (fun _ ->
            let c = Random.State.int st 96 in
            if c = 95 then '\n' else Char.chr (32 + c))
      in
      let mutated () =
        let base = Bytes.of_string sample_netlist in
        for _ = 0 to Random.State.int st 8 do
          let k = Random.State.int st (Bytes.length base) in
          Bytes.set base k (Char.chr (32 + Random.State.int st 95))
        done;
        Bytes.to_string base
      in
      let text = if Random.State.bool st then garbage () else mutated () in
      match Parser.parse_string text with
      | _ -> true
      | exception Parser.Parse_error _ -> true
      | exception _ -> false)

(* Every shipped example deck must parse, pass the structural checks and
   solve its operating point. The decks are dune deps copied next to the
   test tree. *)
let test_shipped_decks () =
  let dir = "../circuits" in
  let decks =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".sp")
    |> List.sort compare
  in
  Alcotest.(check bool) "decks found" true (List.length decks >= 5);
  List.iter
    (fun f ->
      let c = Parser.parse_file (Filename.concat dir f) in
      Alcotest.(check (list string)) (f ^ " structurally clean") []
        (List.map (Format.asprintf "%a" Topology.pp_issue)
           (Topology.check c));
      let op = Engine.Dcop.solve (Engine.Mna.compile c) in
      ignore op)
    decks

let () =
  Alcotest.run "circuit"
    [ ("expr",
       [ Alcotest.test_case "arithmetic" `Quick test_expr_basic;
         Alcotest.test_case "environment" `Quick test_expr_env;
         Alcotest.test_case "errors" `Quick test_expr_errors ]);
      ("netlist",
       [ Alcotest.test_case "duplicate names" `Quick test_builder_duplicate;
         Alcotest.test_case "node names" `Quick test_node_names ]);
      ("parser",
       [ Alcotest.test_case "basic deck" `Quick test_parse_basic;
         Alcotest.test_case "continuation lines" `Quick
           test_parse_continuation;
         Alcotest.test_case "source waveforms" `Quick test_parse_sources;
         Alcotest.test_case "subckt flattening" `Quick test_parse_subckt;
         Alcotest.test_case "print/parse roundtrip" `Quick
           test_parse_roundtrip;
         Alcotest.test_case "errors" `Quick test_parse_errors;
         Alcotest.test_case "K mutual card" `Quick test_parse_mutual;
         Alcotest.test_case "resistor TC" `Quick test_resistor_tc;
         Alcotest.test_case ".options card" `Quick test_parse_options;
         Alcotest.test_case ".include" `Quick test_parse_include ]);
      ( "parser-props",
        List.map QCheck_alcotest.to_alcotest [ prop_parser_total ] );
      ("decks",
       [ Alcotest.test_case "shipped decks solve" `Quick
           test_shipped_decks ]);
      ("topology",
       [ Alcotest.test_case "checks" `Quick test_topology_checks;
         Alcotest.test_case "no ground" `Quick test_no_ground ]);
      ("transform",
       [ Alcotest.test_case "zero AC sources" `Quick test_zero_ac;
         Alcotest.test_case "probe attach/remove" `Quick
           test_probe_attach_remove;
         Alcotest.test_case "split terminal" `Quick test_split_terminal;
         Alcotest.test_case "split with repeated nets" `Quick
           test_split_terminal_repeated_nets;
         Alcotest.test_case "series ammeter" `Quick
           test_insert_series_vsource ]) ]
