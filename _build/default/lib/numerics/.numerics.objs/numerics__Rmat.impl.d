lib/numerics/rmat.ml: Dense Field
