lib/numerics/field.ml: Complex Cx Float Format
