lib/numerics/eigen.mli: Complex Rmat
