lib/numerics/sparse.mli: Field
