lib/numerics/sweep.mli: Format
