lib/numerics/interp.mli:
