lib/numerics/peak.mli:
