lib/numerics/srmat.ml: Field Sparse
