lib/numerics/cmat.ml: Dense Field
