lib/numerics/dense.ml: Array Field Float Format
