lib/numerics/scmat.ml: Field Sparse
