lib/numerics/sparse.ml: Array Field Float Hashtbl List
