lib/numerics/svgplot.mli:
