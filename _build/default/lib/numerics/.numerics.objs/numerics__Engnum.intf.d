lib/numerics/engnum.mli:
