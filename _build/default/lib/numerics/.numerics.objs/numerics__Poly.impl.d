lib/numerics/poly.ml: Array Complex Cx Float Format Int List
