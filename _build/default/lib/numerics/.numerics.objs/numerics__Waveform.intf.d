lib/numerics/waveform.mli: Complex
