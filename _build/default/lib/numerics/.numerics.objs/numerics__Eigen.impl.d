lib/numerics/eigen.ml: Complex Float Int Rmat
