lib/numerics/waveform.ml: Array Buffer Complex Cx Deriv Interp Printf Vec
