lib/numerics/peak.ml: Array Float Int List Vec
