lib/numerics/sweep.ml: Array Engnum Format Int Vec
