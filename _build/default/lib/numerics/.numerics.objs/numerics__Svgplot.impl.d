lib/numerics/svgplot.ml: Array Buffer Engnum Float List Printf String
