lib/numerics/vec.mli:
