lib/numerics/deriv.mli:
