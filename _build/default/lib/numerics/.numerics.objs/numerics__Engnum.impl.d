lib/numerics/engnum.ml: Float List Printf String
