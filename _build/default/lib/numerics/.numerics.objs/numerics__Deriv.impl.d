lib/numerics/deriv.ml: Array Float
