type t =
  | Lin of { start : float; stop : float; points : int }
  | Dec of { start : float; stop : float; per_decade : int }
  | List of float array

let decade start stop per_decade = Dec { start; stop; per_decade }
let linear start stop points = Lin { start; stop; points }

let dec_count start stop per_decade =
  let decades = log10 (stop /. start) in
  Int.max 2 (1 + int_of_float (ceil (decades *. float_of_int per_decade)))

let points = function
  | Lin { start; stop; points } -> Vec.linspace start stop points
  | Dec { start; stop; per_decade } ->
    if start <= 0. || stop <= start then invalid_arg "Sweep.points: Dec range";
    if per_decade < 1 then invalid_arg "Sweep.points: per_decade";
    Vec.logspace start stop (dec_count start stop per_decade)
  | List a ->
    if Array.length a = 0 then invalid_arg "Sweep.points: empty list";
    Array.copy a

let count = function
  | Lin { points; _ } -> points
  | Dec { start; stop; per_decade } -> dec_count start stop per_decade
  | List a -> Array.length a

let zoom ~center ~ratio ~per_decade =
  if center <= 0. || ratio <= 1. then invalid_arg "Sweep.zoom";
  Dec { start = center /. ratio; stop = center *. ratio; per_decade }

let pp ppf = function
  | Lin { start; stop; points } ->
    Format.fprintf ppf "lin(%s, %s, %d)" (Engnum.format start)
      (Engnum.format stop) points
  | Dec { start; stop; per_decade } ->
    Format.fprintf ppf "dec(%s, %s, %d/dec)" (Engnum.format start)
      (Engnum.format stop) per_decade
  | List a -> Format.fprintf ppf "list(%d points)" (Array.length a)
