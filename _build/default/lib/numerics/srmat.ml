(** Sparse real matrices (see {!Sparse}). *)

include Sparse.Make (Field.Float_field)
