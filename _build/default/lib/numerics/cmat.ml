(** Dense complex matrices (see {!Dense} for the operation set). *)

include Dense.Make (Field.Complex_field)
