(** Self-contained SVG line charts.

    A small plotting backend so the tool can emit the paper's figures
    (stability plots, Bode plots, step responses) as standalone [.svg]
    files or embedded in HTML reports — no external plotting dependency.
    Linear and logarithmic axes, multiple series, automatic "nice" ticks,
    grid and legend. *)

type series = {
  label : string;
  xs : float array;
  ys : float array;
  color : string option;  (** CSS color; auto-assigned when [None] *)
}

val series : ?color:string -> string -> float array -> float array -> series

type axis = Linear | Log
(** [Log] requires strictly positive data on that axis. *)

type config = {
  width : int;            (** pixels (default 720) *)
  height : int;           (** pixels (default 420) *)
  title : string;
  x_label : string;
  y_label : string;
  x_axis : axis;
  y_axis : axis;
}

val config :
  ?width:int -> ?height:int -> ?x_axis:axis -> ?y_axis:axis ->
  title:string -> x_label:string -> y_label:string -> unit -> config

val render : config -> series list -> string
(** The SVG document as a string. Non-finite samples break the polyline
    (gaps) rather than corrupting the path. Raises [Invalid_argument] on
    empty data or non-positive values on a log axis. *)

val write : string -> config -> series list -> unit
(** Render to a file. *)
