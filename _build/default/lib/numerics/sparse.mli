(** Sparse matrices with LU factorisation over an arbitrary scalar field
    (left-looking Gilbert-Peierls with partial pivoting). See the
    implementation header for the algorithm; {!Srmat} and {!Scmat} are the
    real and complex instantiations. *)

exception Singular of int

module Make (F : Field.S) : sig
  type elt = F.t
  type t

  val of_triplets : rows:int -> cols:int -> (int * int * elt) list -> t
  (** Duplicate entries are summed; exact zeros dropped. *)

  val rows : t -> int
  val cols : t -> int
  val nnz : t -> int
  val mulvec : t -> elt array -> elt array

  type factor

  val lu_factor : t -> factor
  (** Raises {!Singular} when a column has no usable pivot. *)

  val lu_solve : factor -> elt array -> elt array
  val residual_inf : t -> elt array -> elt array -> float
end
