let create n = Array.make n 0.
let init = Array.init
let copy = Array.copy
let fill a x = Array.fill a 0 (Array.length a) x

let map2 f a b =
  if Array.length a <> Array.length b then invalid_arg "Vec.map2: length";
  Array.init (Array.length a) (fun k -> f a.(k) b.(k))

let add = map2 ( +. )
let sub = map2 ( -. )
let scale k = Array.map (fun x -> k *. x)

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Vec.dot: length";
  let s = ref 0. in
  for k = 0 to Array.length a - 1 do
    s := !s +. (a.(k) *. b.(k))
  done;
  !s

let axpy alpha x y =
  if Array.length x <> Array.length y then invalid_arg "Vec.axpy: length";
  for k = 0 to Array.length x - 1 do
    y.(k) <- y.(k) +. (alpha *. x.(k))
  done

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. a

let max_abs_diff a b =
  if Array.length a <> Array.length b then invalid_arg "Vec.max_abs_diff";
  let m = ref 0. in
  for k = 0 to Array.length a - 1 do
    m := Float.max !m (Float.abs (a.(k) -. b.(k)))
  done;
  !m

let fold_nonempty name f a =
  if Array.length a = 0 then invalid_arg name
  else Array.fold_left f a.(0) (Array.sub a 1 (Array.length a - 1))

let mean a =
  if Array.length a = 0 then invalid_arg "Vec.mean";
  Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let minimum a = fold_nonempty "Vec.minimum" Float.min a
let maximum a = fold_nonempty "Vec.maximum" Float.max a

let arg_best better a =
  if Array.length a = 0 then invalid_arg "Vec.arg_best";
  let best = ref 0 in
  for k = 1 to Array.length a - 1 do
    if better a.(k) a.(!best) then best := k
  done;
  !best

let argmin a = arg_best ( < ) a
let argmax a = arg_best ( > ) a

let linspace a b n =
  if n < 2 then invalid_arg "Vec.linspace: n >= 2";
  let h = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun k -> a +. (h *. float_of_int k))

let logspace a b n =
  if a <= 0. || b <= 0. then invalid_arg "Vec.logspace: positive endpoints";
  Array.map exp (linspace (log a) (log b) n)

let all_close ?(tol = 1e-9) a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  for k = 0 to Array.length a - 1 do
    let scale = Float.max 1. (Float.max (Float.abs a.(k)) (Float.abs b.(k))) in
    if Float.abs (a.(k) -. b.(k)) > tol *. scale then ok := false
  done;
  !ok
