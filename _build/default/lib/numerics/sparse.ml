(** Sparse matrices with LU factorisation, over an arbitrary scalar field.

    Compressed-sparse-column storage and a left-looking Gilbert–Peierls LU
    with partial pivoting (the algorithm of CSparse's [cs_lu]): column j of
    the factors comes from one sparse triangular solve against the columns
    computed so far, with the nonzero pattern discovered by depth-first
    search. Complexity is proportional to the flops actually performed, so
    circuit matrices — a handful of entries per row — factor in near-linear
    time where the dense code pays O(n^3).

    The engine keeps dense LU for everyday circuits (tens of unknowns, see
    DESIGN.md section 6) and switches to this backend when the all-nodes
    scan meets boards with hundreds of nets. *)

exception Singular of int
(** No acceptable pivot in the given column. *)

module Make (F : Field.S) = struct
  type elt = F.t

  type t = {
    rows : int;
    cols : int;
    colptr : int array;   (* length cols+1 *)
    rowidx : int array;   (* length nnz, row index per entry *)
    values : elt array;
  }

  let rows m = m.rows
  let cols m = m.cols
  let nnz m = m.colptr.(m.cols)

  let of_triplets ~rows ~cols triplets =
    if rows < 0 || cols < 0 then invalid_arg "Sparse.of_triplets";
    List.iter
      (fun (i, j, _) ->
        if i < 0 || i >= rows || j < 0 || j >= cols then
          invalid_arg "Sparse.of_triplets: index out of range")
      triplets;
    (* Sum duplicates via per-column accumulation. *)
    let per_col = Array.make cols [] in
    List.iter
      (fun (i, j, v) -> per_col.(j) <- (i, v) :: per_col.(j))
      triplets;
    let colptr = Array.make (cols + 1) 0 in
    let cells =
      Array.map
        (fun entries ->
          let tbl = Hashtbl.create 8 in
          List.iter
            (fun (i, v) ->
              let cur =
                try Hashtbl.find tbl i with Not_found -> F.zero
              in
              Hashtbl.replace tbl i (F.add cur v))
            entries;
          Hashtbl.fold (fun i v acc -> (i, v) :: acc) tbl []
          |> List.filter (fun (_, v) -> F.abs v <> 0.)
          |> List.sort (fun (a, _) (b, _) -> compare a b))
        per_col
    in
    Array.iteri
      (fun j cs -> colptr.(j + 1) <- colptr.(j) + List.length cs)
      cells;
    let n = colptr.(cols) in
    let rowidx = Array.make n 0 and values = Array.make n F.zero in
    Array.iteri
      (fun j cs ->
        List.iteri
          (fun k (i, v) ->
            rowidx.(colptr.(j) + k) <- i;
            values.(colptr.(j) + k) <- v)
          cs)
      cells;
    { rows; cols; colptr; rowidx; values }

  let mulvec m x =
    if Array.length x <> m.cols then invalid_arg "Sparse.mulvec";
    let y = Array.make m.rows F.zero in
    for j = 0 to m.cols - 1 do
      let xj = x.(j) in
      if F.abs xj <> 0. then
        for p = m.colptr.(j) to m.colptr.(j + 1) - 1 do
          let i = m.rowidx.(p) in
          y.(i) <- F.add y.(i) (F.mul m.values.(p) xj)
        done
    done;
    y

  (* Growable column store for the factors. *)
  type colbuf = {
    mutable idx : int array;
    mutable v : elt array;
    mutable len : int;
  }

  let colbuf_make () = { idx = Array.make 16 0; v = Array.make 16 F.zero; len = 0 }

  let colbuf_push cb i x =
    if cb.len = Array.length cb.idx then begin
      let n = 2 * cb.len in
      let idx = Array.make n 0 and v = Array.make n F.zero in
      Array.blit cb.idx 0 idx 0 cb.len;
      Array.blit cb.v 0 v 0 cb.len;
      cb.idx <- idx;
      cb.v <- v
    end;
    cb.idx.(cb.len) <- i;
    cb.v.(cb.len) <- x;
    cb.len <- cb.len + 1

  type factor = {
    n : int;
    l_cols : colbuf array;   (* unit-diagonal L, strictly-below entries,
                                keyed by ORIGINAL row index *)
    u_cols : colbuf array;   (* U incl. diagonal (last entry), keyed by
                                pivot position *)
    pinv : int array;        (* pinv.(orig_row) = pivot position, or -1
                                during factorisation *)
  }

  (* Left-looking LU with partial pivoting. Rows are renamed lazily:
     pinv.(r) is the pivot position assigned to original row r, or -1. *)
  let lu_factor a =
    if a.rows <> a.cols then invalid_arg "Sparse.lu_factor: square required";
    let n = a.rows in
    let l_cols = Array.init n (fun _ -> colbuf_make ()) in
    let u_cols = Array.init n (fun _ -> colbuf_make ()) in
    let pinv = Array.make n (-1) in
    (* Dense work vector + visited stamp per column. *)
    let x = Array.make n F.zero in
    let mark = Array.make n (-1) in
    let order = Array.make n 0 in   (* DFS postorder of the pattern *)
    (* Iterative DFS over the pattern of L (in permuted row names):
       starting from the rows of A(:,j); an entry whose row r is already
       pivotal (pinv.(r) = k >= 0) depends on column k of L. *)
    let dfs j =
      let norder = ref 0 in
      for p = a.colptr.(j) to a.colptr.(j + 1) - 1 do
        let r0 = a.rowidx.(p) in
        if mark.(r0) <> j then begin
          (* Explicit DFS with a frontier stack of (row, next-child). *)
          let frontier = ref [ (r0, 0) ] in
          mark.(r0) <- j;
          while !frontier <> [] do
            match !frontier with
            | [] -> ()
            | (r, child) :: rest ->
              let k = pinv.(r) in
              if k < 0 then begin
                (* Non-pivotal row: a leaf. *)
                order.(!norder) <- r;
                incr norder;
                frontier := rest
              end
              else begin
                let lc = l_cols.(k) in
                if child < lc.len then begin
                  frontier := (r, child + 1) :: rest;
                  let rc = lc.idx.(child) in
                  if mark.(rc) <> j then begin
                    mark.(rc) <- j;
                    frontier := (rc, 0) :: !frontier
                  end
                end
                else begin
                  (* All children done: postorder emit. *)
                  order.(!norder) <- r;
                  incr norder;
                  frontier := rest
                end
              end
          done
        end
      done;
      !norder
    in
    for j = 0 to n - 1 do
      (* Symbolic: reachable pattern in topological (reverse post) order. *)
      let norder = dfs j in
      (* Numeric scatter of A(:,j). *)
      for p = a.colptr.(j) to a.colptr.(j + 1) - 1 do
        x.(a.rowidx.(p)) <- a.values.(p)
      done;
      (* Eliminate in topological order: process pivotal rows from the
         DFS postorder reversed (dependencies first). *)
      for o = norder - 1 downto 0 do
        let r = order.(o) in
        let k = pinv.(r) in
        if k >= 0 then begin
          let xk = x.(r) in
          if F.abs xk <> 0. then begin
            let lc = l_cols.(k) in
            for q = 0 to lc.len - 1 do
              let rr = lc.idx.(q) in
              x.(rr) <- F.sub x.(rr) (F.mul lc.v.(q) xk)
            done
          end
        end
      done;
      (* Pivot: the largest non-pivotal entry of the pattern. *)
      let pivot_row = ref (-1) in
      let pivot_mag = ref 0. in
      for o = 0 to norder - 1 do
        let r = order.(o) in
        if pinv.(r) < 0 then begin
          let m = F.abs x.(r) in
          if m > !pivot_mag then begin
            pivot_mag := m;
            pivot_row := r
          end
        end
      done;
      if !pivot_row < 0 || !pivot_mag = 0. || not (Float.is_finite !pivot_mag)
      then raise (Singular j);
      let pr = !pivot_row in
      let pv = x.(pr) in
      pinv.(pr) <- j;
      (* Store U(:,j): entries on pivotal rows (position < j), diagonal
         last. *)
      for o = 0 to norder - 1 do
        let r = order.(o) in
        let k = pinv.(r) in
        if k >= 0 && k < j && F.abs x.(r) <> 0. then
          colbuf_push u_cols.(j) k x.(r)
      done;
      colbuf_push u_cols.(j) j pv;
      (* Store L(:,j): non-pivotal rows, scaled by the pivot, keyed by
         ORIGINAL row index (renamed on the fly as rows become pivotal). *)
      for o = 0 to norder - 1 do
        let r = order.(o) in
        if pinv.(r) < 0 && F.abs x.(r) <> 0. then
          colbuf_push l_cols.(j) r (F.div x.(r) pv)
      done;
      (* Clear the work vector. *)
      for o = 0 to norder - 1 do
        x.(order.(o)) <- F.zero
      done
    done;
    { n; l_cols; u_cols; pinv }

  let lu_solve f b =
    if Array.length b <> f.n then invalid_arg "Sparse.lu_solve";
    let n = f.n in
    (* Forward: y in pivot order; L columns hold original row names, so
       work on a copy indexed by original rows and read pivots through
       pinv. *)
    let w = Array.copy b in
    (* Row r with pinv.(r) = k means w.(r) is the k-th equation. Process
       columns in order: subtract L(:,k) * y_k. y_k lives at the pivot row
       of column k. *)
    let pivot_row_of = Array.make n 0 in
    Array.iteri (fun r k -> pivot_row_of.(k) <- r) f.pinv;
    for k = 0 to n - 1 do
      let yk = w.(pivot_row_of.(k)) in
      if F.abs yk <> 0. then begin
        let lc = f.l_cols.(k) in
        for q = 0 to lc.len - 1 do
          let r = lc.idx.(q) in
          w.(r) <- F.sub w.(r) (F.mul lc.v.(q) yk)
        done
      end
    done;
    (* Back substitution on U (U is stored per column with the diagonal
       last, entries keyed by pivot position). *)
    let y = Array.init n (fun k -> w.(pivot_row_of.(k))) in
    let xsol = Array.make n F.zero in
    for k = n - 1 downto 0 do
      let uc = f.u_cols.(k) in
      let diag = uc.v.(uc.len - 1) in
      xsol.(k) <- F.div y.(k) diag;
      (* U(:,k)'s above-diagonal entries feed earlier equations. *)
      for q = 0 to uc.len - 2 do
        let i = uc.idx.(q) in
        y.(i) <- F.sub y.(i) (F.mul uc.v.(q) xsol.(k))
      done
    done;
    xsol

  let residual_inf m x b =
    let ax = mulvec m x in
    let worst = ref 0. in
    Array.iteri
      (fun i v -> worst := Float.max !worst (F.abs (F.sub v b.(i))))
      ax;
    !worst
end
