module Real = struct
  type t = { x : float array; y : float array }

  let make x y =
    let n = Array.length x in
    if n = 0 || Array.length y <> n then
      invalid_arg "Waveform.Real.make: lengths";
    for k = 1 to n - 1 do
      if x.(k) <= x.(k - 1) then
        invalid_arg "Waveform.Real.make: x must be strictly increasing"
    done;
    { x = Array.copy x; y = Array.copy y }

  let length w = Array.length w.x
  let value_at w t = Interp.linear ~x:w.x ~y:w.y t
  let map f w = { w with y = Array.map f w.y }

  let zip f a b =
    if Array.length a.x <> Array.length b.x then
      invalid_arg "Waveform.Real.zip: axes differ";
    { a with y = Array.mapi (fun k ya -> f ya b.y.(k)) a.y }

  let maximum w =
    let i = Vec.argmax w.y in
    (w.x.(i), w.y.(i))

  let minimum w =
    let i = Vec.argmin w.y in
    (w.x.(i), w.y.(i))

  let final w = w.y.(Array.length w.y - 1)
  let crossings w lvl = Interp.crossings ~x:w.x ~y:w.y lvl

  let derivative w =
    { w with y = Deriv.first ~x:w.x ~y:w.y }

  let to_csv ?(header = ("x", "y")) w =
    let b = Buffer.create 1024 in
    Buffer.add_string b (fst header ^ "," ^ snd header ^ "\n");
    Array.iteri
      (fun k x ->
        Buffer.add_string b (Printf.sprintf "%.12g,%.12g\n" x w.y.(k)))
      w.x;
    Buffer.contents b
end

module Freq = struct
  type t = { freqs : float array; h : Complex.t array }

  let make freqs h =
    let n = Array.length freqs in
    if n = 0 || Array.length h <> n then
      invalid_arg "Waveform.Freq.make: lengths";
    { freqs = Array.copy freqs; h = Array.copy h }

  let length w = Array.length w.freqs
  let mag w = Array.map Cx.mag w.h
  let db w = Array.map Cx.db20 w.h

  let phase_deg w =
    (* Unwrap: keep successive samples within 180 degrees of each other. *)
    let n = Array.length w.h in
    let out = Array.make n 0. in
    let offset = ref 0. in
    for k = 0 to n - 1 do
      let raw = Cx.phase_deg w.h.(k) in
      if k > 0 then begin
        let prev = out.(k - 1) in
        let candidate = raw +. !offset in
        let jump = candidate -. prev in
        if jump > 180. then offset := !offset -. 360.
        else if jump < -180. then offset := !offset +. 360.
      end;
      out.(k) <- raw +. !offset
    done;
    out

  let real w = Array.map (fun z -> z.Complex.re) w.h
  let imag w = Array.map (fun z -> z.Complex.im) w.h

  let at w f =
    let re = Interp.semilogx ~x:w.freqs ~y:(real w) f in
    let im = Interp.semilogx ~x:w.freqs ~y:(imag w) f in
    { Complex.re; im }

  let map f w = { w with h = Array.map f w.h }
  let scale k w = map (Complex.mul k) w

  let div a b =
    if Array.length a.freqs <> Array.length b.freqs then
      invalid_arg "Waveform.Freq.div: axes differ";
    { a with h = Array.mapi (fun k z -> Complex.div z b.h.(k)) a.h }

  let neg = map Complex.neg

  let to_csv w =
    let b = Buffer.create 1024 in
    Buffer.add_string b "freq_hz,real,imag,mag,phase_deg\n";
    let ph = phase_deg w in
    Array.iteri
      (fun k f ->
        let z = w.h.(k) in
        Buffer.add_string b
          (Printf.sprintf "%.12g,%.12g,%.12g,%.12g,%.12g\n" f z.Complex.re
             z.Complex.im (Cx.mag z) ph.(k)))
      w.freqs;
    Buffer.contents b
end
