(** Complex-number helpers on top of [Stdlib.Complex].

    All angles are in radians unless a function name says degrees. *)

type t = Complex.t = { re : float; im : float }

val zero : t
val one : t
val i : t

val make : float -> float -> t
val of_float : float -> t
val j_omega : float -> t
(** [j_omega w] is [0 + jw], the Laplace variable on the imaginary axis. *)

val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( /: ) : t -> t -> t
val neg : t -> t
val conj : t -> t
val inv : t -> t
val scale : float -> t -> t

val mag : t -> float
val mag2 : t -> float
(** Squared magnitude, cheaper than [mag]. *)

val phase : t -> float
val phase_deg : t -> float
val db20 : t -> float
(** [db20 z] is [20 * log10 (mag z)]. *)

val polar : float -> float -> t
(** [polar m a] is the complex of magnitude [m], phase [a] radians. *)

val is_finite : t -> bool
val close : ?tol:float -> t -> t -> bool
(** Relative/absolute mixed closeness with default [tol = 1e-9]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
