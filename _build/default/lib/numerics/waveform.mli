(** Simulation waveforms: real (time-domain) and complex (frequency-domain)
    sampled curves, with the calculator operations the analyses and the
    stability tool need. *)

module Real : sig
  type t = { x : float array; y : float array }

  val make : float array -> float array -> t
  (** Copies its inputs; [x] must be strictly increasing and the arrays the
      same non-zero length. *)

  val length : t -> int

  val value_at : t -> float -> float
  (** Linear interpolation. *)

  val map : (float -> float) -> t -> t

  val zip : (float -> float -> float) -> t -> t -> t
  (** Pointwise combination; both waveforms must share the same axis. *)

  val maximum : t -> float * float
  (** [(x, y)] of the maximum sample. *)

  val minimum : t -> float * float
  val final : t -> float
  val crossings : t -> float -> float list
  val derivative : t -> t

  val to_csv : ?header:string * string -> t -> string
  (** CSV text with a one-line header (default ["x,y"]). *)
end

module Freq : sig
  type t = { freqs : float array; h : Complex.t array }

  val make : float array -> Complex.t array -> t
  val length : t -> int
  val mag : t -> float array
  val db : t -> float array
  val phase_deg : t -> float array
  (** Unwrapped phase in degrees (no 360-degree jumps between samples). *)

  val real : t -> float array
  val imag : t -> float array
  val at : t -> float -> Complex.t
  (** Log-frequency linear interpolation of the complex response. *)

  val map : (Complex.t -> Complex.t) -> t -> t
  val scale : Complex.t -> t -> t
  val div : t -> t -> t
  val neg : t -> t

  val to_csv : t -> string
  (** CSV text: freq, re, im, magnitude, unwrapped phase. *)
end
