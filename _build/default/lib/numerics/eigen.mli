(** Eigenvalues of dense real (non-symmetric) matrices.

    Implements the classic dense path: balancing, Householder reduction to
    upper Hessenberg form, then the implicitly-shifted Francis double-shift
    QR iteration. Eigenvalues only (no vectors) — which is what pole
    analysis needs. Matrices here are small (tens to a couple of hundred),
    so the O(n^3) dense algorithm is the right tool. *)

val eigenvalues : ?max_iter_per_eig:int -> Rmat.t -> Complex.t list
(** All eigenvalues of a square matrix, complex pairs included. Raises
    [Invalid_argument] for non-square input and [Failure] if the QR
    iteration fails to converge (pathological matrices; the per-eigenvalue
    iteration cap defaults to 60). *)

val hessenberg : Rmat.t -> Rmat.t
(** The Householder-similar upper Hessenberg form (exposed for tests). *)
