(** Engineering-notation numbers as used in SPICE netlists.

    Parses values such as ["2.2k"], ["10meg"], ["0.5u"], ["1e-12"], ["3p"]
    and formats floats back into the closest engineering form
    (["3.16M"], ["22.4n"], ...). Suffix matching is case-insensitive and, as
    in SPICE, any trailing unit letters after a recognised suffix are
    ignored (["10kohm"] parses as [1e4]). *)

val parse : string -> float option
(** [parse s] interprets [s] as an engineering-notation number. Returns
    [None] when [s] is not a number at all. *)

val parse_exn : string -> float
(** [parse_exn s] is [parse s], raising [Invalid_argument] on failure. *)

val format : float -> string
(** [format x] renders [x] with an engineering suffix and 4 significant
    digits, e.g. [format 3.3e-12 = "3.3p"]. Zero, infinities and NaN are
    rendered literally. *)

val format_si : ?digits:int -> float -> string
(** [format_si ~digits x] renders with a chosen number of significant
    digits (default 4). *)
