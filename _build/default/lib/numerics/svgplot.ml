type series = {
  label : string;
  xs : float array;
  ys : float array;
  color : string option;
}

let series ?color label xs ys =
  if Array.length xs <> Array.length ys || Array.length xs = 0 then
    invalid_arg "Svgplot.series: lengths";
  { label; xs = Array.copy xs; ys = Array.copy ys; color }

type axis = Linear | Log

type config = {
  width : int;
  height : int;
  title : string;
  x_label : string;
  y_label : string;
  x_axis : axis;
  y_axis : axis;
}

let config ?(width = 720) ?(height = 420) ?(x_axis = Linear)
    ?(y_axis = Linear) ~title ~x_label ~y_label () =
  { width; height; title; x_label; y_label; x_axis; y_axis }

let palette =
  [| "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b";
     "#17becf"; "#7f7f7f" |]

(* Margins around the plot area. *)
let ml = 72. and mr = 18. and mt = 40. and mb = 52.

let data_range axis values =
  let finite =
    Array.to_list values |> List.filter Float.is_finite
  in
  (match axis with
   | Log ->
     if List.exists (fun v -> v <= 0.) finite then
       invalid_arg "Svgplot: non-positive value on a log axis"
   | Linear -> ());
  match finite with
  | [] -> invalid_arg "Svgplot: no finite data"
  | v :: rest ->
    let lo = List.fold_left Float.min v rest in
    let hi = List.fold_left Float.max v rest in
    if lo = hi then (lo -. Float.max 1. (Float.abs lo *. 0.1),
                     hi +. Float.max 1. (Float.abs hi *. 0.1))
    else (lo, hi)

(* "Nice" tick positions. *)
let linear_ticks lo hi =
  let span = hi -. lo in
  let raw = span /. 6. in
  let mag = Float.pow 10. (Float.round (log10 raw -. 0.5)) in
  let step =
    let r = raw /. mag in
    if r < 1.5 then mag
    else if r < 3.5 then 2. *. mag
    else if r < 7.5 then 5. *. mag
    else 10. *. mag
  in
  let first = Float.round (lo /. step -. 0.5) *. step in
  let rec go t acc =
    if t > hi +. (step /. 2.) then List.rev acc
    else go (t +. step) (if t >= lo -. (step /. 2.) then t :: acc else acc)
  in
  go first []

let log_ticks lo hi =
  let d0 = int_of_float (Float.round (log10 lo -. 0.5)) in
  let d1 = int_of_float (Float.round (log10 hi +. 0.5)) in
  let rec go d acc =
    if d > d1 then List.rev acc
    else begin
      let t = Float.pow 10. (float_of_int d) in
      go (d + 1) (if t >= lo *. 0.999 && t <= hi *. 1.001 then t :: acc
                  else acc)
    end
  in
  go d0 []

let tick_label v =
  if v = 0. then "0"
  else if Float.abs v >= 0.01 && Float.abs v < 1000. then
    Printf.sprintf "%.4g" v
  else Engnum.format_si ~digits:3 v

let esc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render cfg ss =
  if ss = [] then invalid_arg "Svgplot.render: no series";
  let w = float_of_int cfg.width and h = float_of_int cfg.height in
  let pw = w -. ml -. mr and ph = h -. mt -. mb in
  let all_x = Array.concat (List.map (fun s -> s.xs) ss) in
  let all_y = Array.concat (List.map (fun s -> s.ys) ss) in
  let x_lo, x_hi = data_range cfg.x_axis all_x in
  let y_lo, y_hi = data_range cfg.y_axis all_y in
  let fwd axis lo hi v =
    match axis with
    | Linear -> (v -. lo) /. (hi -. lo)
    | Log -> (log v -. log lo) /. (log hi -. log lo)
  in
  let sx v = ml +. (pw *. fwd cfg.x_axis x_lo x_hi v) in
  let sy v = mt +. (ph *. (1. -. fwd cfg.y_axis y_lo y_hi v)) in
  let b = Buffer.create 8192 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  out
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\" font-family=\"sans-serif\" font-size=\"12\">\n"
    cfg.width cfg.height cfg.width cfg.height;
  out "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" cfg.width
    cfg.height;
  (* Title and axis labels. *)
  out
    "<text x=\"%g\" y=\"22\" text-anchor=\"middle\" font-size=\"15\" \
     font-weight=\"bold\">%s</text>\n"
    (ml +. (pw /. 2.)) (esc cfg.title);
  out
    "<text x=\"%g\" y=\"%g\" text-anchor=\"middle\">%s</text>\n"
    (ml +. (pw /. 2.)) (h -. 12.) (esc cfg.x_label);
  out
    "<text x=\"16\" y=\"%g\" text-anchor=\"middle\" \
     transform=\"rotate(-90 16 %g)\">%s</text>\n"
    (mt +. (ph /. 2.)) (mt +. (ph /. 2.)) (esc cfg.y_label);
  (* Grid and ticks. *)
  let x_ticks =
    match cfg.x_axis with
    | Linear -> linear_ticks x_lo x_hi
    | Log -> log_ticks x_lo x_hi
  in
  let y_ticks =
    match cfg.y_axis with
    | Linear -> linear_ticks y_lo y_hi
    | Log -> log_ticks y_lo y_hi
  in
  List.iter
    (fun t ->
      let x = sx t in
      out
        "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"#ddd\"/>\n"
        x mt x (mt +. ph);
      out
        "<text x=\"%g\" y=\"%g\" text-anchor=\"middle\">%s</text>\n" x
        (mt +. ph +. 18.) (esc (tick_label t)))
    x_ticks;
  List.iter
    (fun t ->
      let y = sy t in
      out
        "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"#ddd\"/>\n"
        ml y (ml +. pw) y;
      out
        "<text x=\"%g\" y=\"%g\" text-anchor=\"end\">%s</text>\n" (ml -. 6.)
        (y +. 4.) (esc (tick_label t)))
    y_ticks;
  (* Frame. *)
  out
    "<rect x=\"%g\" y=\"%g\" width=\"%g\" height=\"%g\" fill=\"none\" \
     stroke=\"#333\"/>\n"
    ml mt pw ph;
  (* Series. *)
  List.iteri
    (fun i s ->
      let color =
        match s.color with
        | Some c -> c
        | None -> palette.(i mod Array.length palette)
      in
      let path = Buffer.create 256 in
      let pen_down = ref false in
      Array.iteri
        (fun k xv ->
          let yv = s.ys.(k) in
          let ok =
            Float.is_finite xv && Float.is_finite yv
            && (cfg.x_axis = Linear || xv > 0.)
            && (cfg.y_axis = Linear || yv > 0.)
          in
          if ok then begin
            Buffer.add_string path
              (Printf.sprintf "%s%.2f %.2f "
                 (if !pen_down then "L" else "M")
                 (sx xv) (sy yv));
            pen_down := true
          end
          else pen_down := false)
        s.xs;
      out
        "<path d=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.8\"/>\n"
        (String.trim (Buffer.contents path))
        color;
      (* Legend entry. *)
      let ly = mt +. 14. +. (16. *. float_of_int i) in
      out
        "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"%s\" \
         stroke-width=\"2.5\"/>\n"
        (ml +. pw -. 130.) ly (ml +. pw -. 106.) ly color;
      out "<text x=\"%g\" y=\"%g\">%s</text>\n" (ml +. pw -. 100.) (ly +. 4.)
        (esc s.label))
    ss;
  out "</svg>\n";
  Buffer.contents b

let write path cfg ss =
  let oc = open_out path in
  output_string oc (render cfg ss);
  close_out oc
