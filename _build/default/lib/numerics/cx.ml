type t = Complex.t = { re : float; im : float }

let zero = Complex.zero
let one = Complex.one
let i = Complex.i
let make re im = { re; im }
let of_float re = { re; im = 0. }
let j_omega w = { re = 0.; im = w }
let ( +: ) = Complex.add
let ( -: ) = Complex.sub
let ( *: ) = Complex.mul
let ( /: ) = Complex.div
let neg = Complex.neg
let conj = Complex.conj
let inv = Complex.inv
let scale k z = { re = k *. z.re; im = k *. z.im }
let mag = Complex.norm
let mag2 z = (z.re *. z.re) +. (z.im *. z.im)
let phase = Complex.arg
let phase_deg z = Complex.arg z *. 180. /. Float.pi
let db20 z = 20. *. log10 (Complex.norm z)
let polar m a = Complex.polar m a
let is_finite z = Float.is_finite z.re && Float.is_finite z.im

let close ?(tol = 1e-9) a b =
  let d = mag (Complex.sub a b) in
  d <= tol *. Float.max 1. (Float.max (mag a) (mag b))

let pp ppf z =
  (* Normalise the negative zero "-0" %g would print. *)
  let im = if z.im = 0. then 0. else z.im in
  if im >= 0. then Format.fprintf ppf "%.6g+%.6gi" z.re im
  else Format.fprintf ppf "%.6g-%.6gi" z.re (-.im)

let to_string z = Format.asprintf "%a" pp z
