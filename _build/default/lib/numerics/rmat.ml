(** Dense real matrices (see {!Dense} for the operation set). *)

include Dense.Make (Field.Float_field)
