(** Small helpers over [float array] vectors. *)

val create : int -> float array
val init : int -> (int -> float) -> float array
val copy : float array -> float array
val fill : float array -> float -> unit

val map2 : (float -> float -> float) -> float array -> float array -> float array
val add : float array -> float array -> float array
val sub : float array -> float array -> float array
val scale : float -> float array -> float array
val dot : float array -> float array -> float
val axpy : float -> float array -> float array -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val norm2 : float array -> float
val norm_inf : float array -> float
val max_abs_diff : float array -> float array -> float

val mean : float array -> float
val minimum : float array -> float
val maximum : float array -> float
val argmin : float array -> int
val argmax : float array -> int

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n >= 2] evenly spaced points from [a] to [b]
    inclusive. *)

val logspace : float -> float -> int -> float array
(** [logspace a b n]: [n] points from [a] to [b] (both > 0) evenly spaced in
    log. *)

val all_close : ?tol:float -> float array -> float array -> bool
