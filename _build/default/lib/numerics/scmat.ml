(** Sparse complex matrices (see {!Sparse}). *)

include Sparse.Make (Field.Complex_field)
