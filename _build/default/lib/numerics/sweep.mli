(** Sweep grids for analyses (frequency or any positive/real axis). *)

type t =
  | Lin of { start : float; stop : float; points : int }
      (** [points >= 2] evenly spaced values, endpoints included. *)
  | Dec of { start : float; stop : float; per_decade : int }
      (** Logarithmic sweep with [per_decade >= 1] points per decade;
          both endpoints are included. Requires [0 < start < stop]. *)
  | List of float array  (** Explicit values, used as given. *)

val points : t -> float array
(** Materialise the grid. Raises [Invalid_argument] on malformed specs. *)

val decade : float -> float -> int -> t
(** [decade f1 f2 ppd] is [Dec {start = f1; stop = f2; per_decade = ppd}]. *)

val linear : float -> float -> int -> t

val count : t -> int
(** Number of points [points] would return. *)

val zoom : center:float -> ratio:float -> per_decade:int -> t
(** A log window around [center] spanning [center/ratio .. center*ratio],
    used to refine stability-plot peaks. *)

val pp : Format.formatter -> t -> unit
