let suffixes =
  (* Longest match first: "meg" and "mil" must win over "m". *)
  [ ("meg", 1e6); ("mil", 25.4e-6);
    ("t", 1e12); ("g", 1e9); ("k", 1e3); ("m", 1e-3); ("u", 1e-6);
    ("n", 1e-9); ("p", 1e-12); ("f", 1e-15); ("a", 1e-18) ]

let is_digit c = c >= '0' && c <= '9'

(* Split [s] into its longest leading float literal and the remainder. *)
let split_number s =
  let n = String.length s in
  let i = ref 0 in
  let accept p = if !i < n && p s.[!i] then (incr i; true) else false in
  let rec digits () = if accept is_digit then digits () in
  ignore (accept (fun c -> c = '+' || c = '-'));
  let start_digits = !i in
  digits ();
  if accept (fun c -> c = '.') then digits ();
  if !i = start_digits then None
  else begin
    (* Optional exponent: only consume when well-formed. *)
    let before_exp = !i in
    if accept (fun c -> c = 'e' || c = 'E') then begin
      ignore (accept (fun c -> c = '+' || c = '-'));
      let d0 = !i in
      digits ();
      if !i = d0 then i := before_exp
    end;
    Some (String.sub s 0 !i, String.sub s !i (n - !i))
  end

let parse s =
  let s = String.trim s in
  match split_number s with
  | None -> None
  | Some (num, rest) ->
    match float_of_string_opt num with
    | None -> None
    | Some v ->
      let rest = String.lowercase_ascii rest in
      if rest = "" then Some v
      else
        let matching (suf, _) =
          String.length rest >= String.length suf
          && String.sub rest 0 (String.length suf) = suf
        in
        (match List.find_opt matching suffixes with
         | Some (_, mult) -> Some (v *. mult)
         | None ->
           (* Unknown trailing letters ("ohm", "v", "hz") are units. *)
           if String.for_all (fun c -> (c >= 'a' && c <= 'z') || c = '_') rest
           then Some v
           else None)

let parse_exn s =
  match parse s with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Engnum.parse_exn: %S" s)

let format_si ?(digits = 4) x =
  if x = 0. then "0"
  else if Float.is_nan x then "nan"
  else if Float.abs x = Float.infinity then
    if x > 0. then "inf" else "-inf"
  else
    let mag = Float.abs x in
    (* SPICE-compatible suffixes: mega must be "meg" because a bare "m"
       reads back as milli (suffixes are case-insensitive). *)
    let tiers =
      [ (1e12, "t"); (1e9, "g"); (1e6, "meg"); (1e3, "k"); (1., "");
        (1e-3, "m"); (1e-6, "u"); (1e-9, "n"); (1e-12, "p"); (1e-15, "f") ]
    in
    let rec pick = function
      | [] -> (1e-15, "f")
      | (m, s) :: rest -> if mag >= m *. 0.9999999 then (m, s) else pick rest
    in
    let mult, suf = pick tiers in
    let scaled = x /. mult in
    let str = Printf.sprintf "%.*g" digits scaled in
    str ^ suf

let format x = format_si ~digits:4 x
