(* Dense real eigenvalues: balance -> Hessenberg (stabilised elementary
   transformations) -> Francis double-shift QR. The QR core follows the
   classic formulation (Wilkinson; popularised by EISPACK's hqr): it acts
   on the Hessenberg matrix in place, deflating one or two eigenvalues at a
   time from the bottom-right corner, with exceptional shifts every ten
   stalled iterations. *)

let get = Rmat.get
let set = Rmat.set

(* Diagonal similarity scaling so row and column norms match; improves the
   accuracy of everything downstream. Powers of two only, hence exact. *)
let balance a =
  let n = Rmat.rows a in
  let radix2 = 4. in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    for i = 0 to n - 1 do
      let c = ref 0. and r = ref 0. in
      for j = 0 to n - 1 do
        if j <> i then begin
          c := !c +. Float.abs (get a j i);
          r := !r +. Float.abs (get a i j)
        end
      done;
      if !c <> 0. && !r <> 0. then begin
        let g = ref (!r /. 2.) in
        let f = ref 1. in
        let s = !c +. !r in
        while !c < !g do
          f := !f *. 2.;
          c := !c *. radix2
        done;
        g := !r *. 2.;
        while !c > !g do
          f := !f /. 2.;
          c := !c /. radix2
        done;
        if (!c +. !r) /. !f < 0.95 *. s then begin
          continue_ := true;
          let ginv = 1. /. !f in
          for j = 0 to n - 1 do
            set a i j (get a i j *. ginv)
          done;
          for j = 0 to n - 1 do
            set a j i (get a j i *. !f)
          done
        end
      end
    done
  done

(* Reduction to upper Hessenberg form by pivoted elementary similarity
   transformations. *)
let to_hessenberg a =
  let n = Rmat.rows a in
  for m = 1 to n - 2 do
    (* Pivot: largest entry of column m-1 at or below row m. *)
    let x = ref 0. and piv = ref m in
    for j = m to n - 1 do
      if Float.abs (get a j (m - 1)) > Float.abs !x then begin
        x := get a j (m - 1);
        piv := j
      end
    done;
    if !x <> 0. then begin
      if !piv <> m then begin
        for j = m - 1 to n - 1 do
          let tmp = get a !piv j in
          set a !piv j (get a m j);
          set a m j tmp
        done;
        for j = 0 to n - 1 do
          let tmp = get a j !piv in
          set a j !piv (get a j m);
          set a j m tmp
        done
      end;
      for i = m + 1 to n - 1 do
        let y = get a i (m - 1) /. !x in
        if y <> 0. then begin
          set a i (m - 1) 0.;
          for j = m to n - 1 do
            set a i j (get a i j -. (y *. get a m j))
          done;
          for j = 0 to n - 1 do
            set a j m (get a j m +. (y *. get a j i))
          done
        end
      done
    end
  done;
  (* Zero the entries below the first subdiagonal (they are formally zero
     but may carry rounding noise from the column updates). *)
  for i = 2 to n - 1 do
    for j = 0 to i - 2 do
      set a i j 0.
    done
  done

let hessenberg m =
  if Rmat.rows m <> Rmat.cols m then invalid_arg "Eigen.hessenberg: square";
  let a = Rmat.copy m in
  to_hessenberg a;
  a

let sign_of magnitude reference =
  if reference >= 0. then Float.abs magnitude else -.Float.abs magnitude

(* Francis double-shift QR on an upper Hessenberg matrix; returns the
   eigenvalues. Mutates [a]. *)
let hqr ?(max_iter_per_eig = 60) a =
  let n = Rmat.rows a in
  let out = ref [] in
  let emit re im = out := { Complex.re; im } :: !out in
  let anorm = ref 0. in
  for i = 0 to n - 1 do
    for j = Int.max 0 (i - 1) to n - 1 do
      anorm := !anorm +. Float.abs (get a i j)
    done
  done;
  let t = ref 0. in
  let nn = ref (n - 1) in
  while !nn >= 0 do
    let its = ref 0 in
    let deflated = ref false in
    while not !deflated do
      (* Find l: the start of the active block (small subdiagonal). *)
      let l = ref !nn in
      let found = ref false in
      while (not !found) && !l >= 1 do
        let s =
          let s0 =
            Float.abs (get a (!l - 1) (!l - 1)) +. Float.abs (get a !l !l)
          in
          if s0 = 0. then !anorm else s0
        in
        if Float.abs (get a !l (!l - 1)) +. s = s then begin
          set a !l (!l - 1) 0.;
          found := true
        end
        else decr l
      done;
      let l = !l in
      let x = ref (get a !nn !nn) in
      if l = !nn then begin
        (* One real eigenvalue. *)
        emit (!x +. !t) 0.;
        decr nn;
        deflated := true
      end
      else begin
        let y = ref (get a (!nn - 1) (!nn - 1)) in
        let w = ref (get a !nn (!nn - 1) *. get a (!nn - 1) !nn) in
        if l = !nn - 1 then begin
          (* A 2x2 block: a real pair or a complex-conjugate pair. *)
          let p = 0.5 *. (!y -. !x) in
          let q = (p *. p) +. !w in
          let z = sqrt (Float.abs q) in
          let xx = !x +. !t in
          if q >= 0. then begin
            let z = p +. sign_of z p in
            emit (xx +. z) 0.;
            if z <> 0. then emit (xx -. (!w /. z)) 0. else emit (xx +. z) 0.
          end
          else begin
            emit (xx +. p) z;
            emit (xx +. p) (-.z)
          end;
          nn := !nn - 2;
          deflated := true
        end
        else begin
          if !its = max_iter_per_eig then
            failwith "Eigen.eigenvalues: QR iteration did not converge";
          if !its mod 10 = 0 && !its > 0 then begin
            (* Exceptional shift. *)
            t := !t +. !x;
            for i = 0 to !nn do
              set a i i (get a i i -. !x)
            done;
            let s =
              Float.abs (get a !nn (!nn - 1))
              +. Float.abs (get a (!nn - 1) (!nn - 2))
            in
            x := 0.75 *. s;
            y := !x;
            w := -0.4375 *. s *. s
          end;
          incr its;
          (* Find two consecutive small subdiagonal elements. *)
          let p = ref 0. and q = ref 0. and r = ref 0. in
          let m = ref (!nn - 2) in
          let stop = ref false in
          while (not !stop) && !m >= l do
            let z = get a !m !m in
            let rr = !x -. z in
            let ss = !y -. z in
            p := ((rr *. ss) -. !w) /. get a (!m + 1) !m +. get a !m (!m + 1);
            q := get a (!m + 1) (!m + 1) -. z -. rr -. ss;
            r := get a (!m + 2) (!m + 1);
            let s = Float.abs !p +. Float.abs !q +. Float.abs !r in
            p := !p /. s;
            q := !q /. s;
            r := !r /. s;
            if !m = l then stop := true
            else begin
              let u =
                Float.abs (get a !m (!m - 1))
                *. (Float.abs !q +. Float.abs !r)
              in
              let v =
                Float.abs !p
                *. (Float.abs (get a (!m - 1) (!m - 1))
                   +. Float.abs z
                   +. Float.abs (get a (!m + 1) (!m + 1)))
              in
              if u +. v = v then stop := true else decr m
            end
          done;
          let m = !m in
          for i = m + 2 to !nn do
            set a i (i - 2) 0.;
            if i > m + 2 then set a i (i - 3) 0.
          done;
          (* Double QR sweep over the active block. *)
          for k = m to !nn - 1 do
            if k <> m then begin
              p := get a k (k - 1);
              q := get a (k + 1) (k - 1);
              r := if k <> !nn - 1 then get a (k + 2) (k - 1) else 0.;
              x := Float.abs !p +. Float.abs !q +. Float.abs !r;
              if !x <> 0. then begin
                p := !p /. !x;
                q := !q /. !x;
                r := !r /. !x
              end
            end;
            let s =
              sign_of (sqrt ((!p *. !p) +. (!q *. !q) +. (!r *. !r))) !p
            in
            if s <> 0. then begin
              if k = m then begin
                if l <> m then set a k (k - 1) (-.get a k (k - 1))
              end
              else set a k (k - 1) (-.(s *. !x));
              p := !p +. s;
              x := !p /. s;
              y := !q /. s;
              let z = !r /. s in
              q := !q /. !p;
              r := !r /. !p;
              for j = k to !nn do
                let pj =
                  get a k j +. (!q *. get a (k + 1) j)
                  +. (if k <> !nn - 1 then !r *. get a (k + 2) j else 0.)
                in
                if k <> !nn - 1 then
                  set a (k + 2) j (get a (k + 2) j -. (pj *. z));
                set a (k + 1) j (get a (k + 1) j -. (pj *. !y));
                set a k j (get a k j -. (pj *. !x))
              done;
              let mmin = Int.min !nn (k + 3) in
              for i = l to mmin do
                let pi =
                  (!x *. get a i k) +. (!y *. get a i (k + 1))
                  +. (if k <> !nn - 1 then get a i (k + 2) *. z else 0.)
                in
                if k <> !nn - 1 then
                  set a i (k + 2) (get a i (k + 2) -. (pi *. !r));
                set a i (k + 1) (get a i (k + 1) -. (pi *. !q));
                set a i k (get a i k -. pi)
              done
            end
          done
        end
      end
    done
  done;
  !out

let eigenvalues ?max_iter_per_eig m =
  if Rmat.rows m <> Rmat.cols m then invalid_arg "Eigen.eigenvalues: square";
  if Rmat.rows m = 0 then []
  else begin
    let a = Rmat.copy m in
    balance a;
    to_hessenberg a;
    hqr ?max_iter_per_eig a
  end
