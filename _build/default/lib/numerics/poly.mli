(** Polynomials with complex coefficients, used for transfer-function
    pole/zero work in the control library.

    A polynomial is stored as a coefficient array in ascending powers:
    [c.(0) + c.(1) s + c.(2) s^2 + ...]. The representation is normalised so
    the leading coefficient is non-zero (except for the zero polynomial). *)

type t

val of_coeffs : Complex.t array -> t
(** Ascending-power coefficients; trailing (near-)zero coefficients are
    trimmed. *)

val of_real_coeffs : float array -> t
val coeffs : t -> Complex.t array
val zero : t
val one : t
val const : Complex.t -> t
val s : t
(** The monomial [s]. *)

val degree : t -> int
(** Degree; the zero polynomial has degree [-1] by convention. *)

val is_zero : t -> bool
val equal : ?tol:float -> t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : Complex.t -> t -> t
val pow : t -> int -> t
val derivative : t -> t

val eval : t -> Complex.t -> Complex.t
(** Horner evaluation. *)

val from_roots : ?gain:Complex.t -> Complex.t list -> t
(** [from_roots ~gain rs] is [gain * prod (s - r)]. *)

val roots : ?max_iter:int -> ?tol:float -> t -> Complex.t list
(** All complex roots via the Durand–Kerner simultaneous iteration, with
    coefficient scaling for conditioning. Degree 0 gives []. Raises
    [Invalid_argument] on the zero polynomial. *)

val pp : Format.formatter -> t -> unit
