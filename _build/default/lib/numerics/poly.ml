open Cx

type t = Complex.t array
(* Ascending powers, leading coefficient non-zero (invariant maintained by
   [trim]); [||] is the zero polynomial. *)

let trim c =
  let n = ref (Array.length c) in
  while !n > 0 && Cx.mag c.(!n - 1) = 0. do decr n done;
  Array.sub c 0 !n

let of_coeffs c = trim (Array.copy c)
let of_real_coeffs c = trim (Array.map Cx.of_float c)
let coeffs p = Array.copy p
let zero = [||]
let one = [| Cx.one |]
let const k = trim [| k |]
let s = [| Cx.zero; Cx.one |]
let degree p = Array.length p - 1
let is_zero p = Array.length p = 0

let add a b =
  let n = Int.max (Array.length a) (Array.length b) in
  let at c k = if k < Array.length c then c.(k) else Cx.zero in
  trim (Array.init n (fun k -> at a k +: at b k))

let scale k p = trim (Array.map (fun c -> k *: c) p)
let sub a b = add a (scale (Cx.of_float (-1.)) b)

let mul a b =
  if is_zero a || is_zero b then zero
  else begin
    let c = Array.make (Array.length a + Array.length b - 1) Cx.zero in
    Array.iteri
      (fun i ai ->
        Array.iteri (fun j bj -> c.(i + j) <- c.(i + j) +: (ai *: bj)) b)
      a;
    trim c
  end

let rec pow p n =
  if n < 0 then invalid_arg "Poly.pow"
  else if n = 0 then one
  else mul p (pow p (n - 1))

let derivative p =
  if Array.length p <= 1 then zero
  else
    trim
      (Array.init (Array.length p - 1) (fun k ->
           Cx.scale (float_of_int (k + 1)) p.(k + 1)))

let eval p x =
  let acc = ref Cx.zero in
  for k = Array.length p - 1 downto 0 do
    acc := (!acc *: x) +: p.(k)
  done;
  !acc

let equal ?(tol = 1e-9) a b =
  let d = sub a b in
  Array.for_all (fun c -> Cx.mag c <= tol) d

let from_roots ?(gain = Cx.one) rs =
  List.fold_left
    (fun acc r -> mul acc (of_coeffs [| Cx.neg r; Cx.one |]))
    (const gain) rs

(* Durand–Kerner: iterate z_i <- z_i - p(z_i) / prod_{j<>i} (z_i - z_j) on a
   monic, magnitude-scaled copy of the polynomial. The starting points lie
   on a circle of the Cauchy root radius with an irrational angle step so no
   starting point is a root of a real polynomial by accident. *)
let roots ?(max_iter = 400) ?(tol = 1e-12) p =
  if is_zero p then invalid_arg "Poly.roots: zero polynomial";
  let n = degree p in
  if n = 0 then []
  else begin
    let lead = p.(n) in
    let monic = Array.map (fun c -> c /: lead) p in
    let radius =
      (* Cauchy bound: 1 + max |c_k|. *)
      let m = ref 0. in
      for k = 0 to n - 1 do
        m := Float.max !m (Cx.mag monic.(k))
      done;
      1. +. !m
    in
    let z =
      Array.init n (fun k ->
          Cx.polar
            (radius *. 0.7)
            ((2. *. Float.pi *. float_of_int k /. float_of_int n) +. 0.41))
    in
    let eval_monic x = eval monic x in
    let converged = ref false in
    let iter = ref 0 in
    while (not !converged) && !iter < max_iter do
      incr iter;
      let biggest_move = ref 0. in
      for i = 0 to n - 1 do
        let num = eval_monic z.(i) in
        let den = ref Cx.one in
        for j = 0 to n - 1 do
          if j <> i then den := !den *: (z.(i) -: z.(j))
        done;
        let delta =
          if Cx.mag !den = 0. then Cx.make 1e-8 1e-8 else num /: !den
        in
        z.(i) <- z.(i) -: delta;
        biggest_move := Float.max !biggest_move (Cx.mag delta)
      done;
      if !biggest_move <= tol *. Float.max 1. radius then converged := true
    done;
    Array.to_list z
  end

let pp ppf p =
  if is_zero p then Format.fprintf ppf "0"
  else
    Array.iteri
      (fun k c ->
        if Cx.mag c > 0. then begin
          if k > 0 then Format.fprintf ppf " + ";
          if k = 0 then Cx.pp ppf c
          else Format.fprintf ppf "(%a)s^%d" Cx.pp c k
        end)
      p
