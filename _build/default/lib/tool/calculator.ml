open Numerics

type wave =
  | Freq of Waveform.Freq.t
  | Real of Waveform.Real.t

let as_freq = function
  | Freq w -> w
  | Real _ ->
    invalid_arg "Calculator: frequency-domain waveform required"

let real_of_freq (w : Waveform.Freq.t) y =
  Real (Waveform.Real.make w.Waveform.Freq.freqs y)

let db20 w =
  let f = as_freq w in
  real_of_freq f (Waveform.Freq.db f)

let mag w =
  match w with
  | Freq f -> real_of_freq f (Waveform.Freq.mag f)
  | Real r -> Real (Waveform.Real.map Float.abs r)

let phase_deg w =
  let f = as_freq w in
  real_of_freq f (Waveform.Freq.phase_deg f)

let real_part w =
  let f = as_freq w in
  real_of_freq f (Waveform.Freq.real f)

let imag_part w =
  let f = as_freq w in
  real_of_freq f (Waveform.Freq.imag f)

let group_delay w =
  (* -d(phase)/d(omega), seconds: the classic calculator companion of the
     phase plot. *)
  let f = as_freq w in
  let ph_rad =
    Array.map (fun d -> d *. Float.pi /. 180.) (Waveform.Freq.phase_deg f)
  in
  let omega =
    Array.map (fun x -> 2. *. Float.pi *. x) f.Waveform.Freq.freqs
  in
  let d = Deriv.first ~x:omega ~y:ph_rad in
  real_of_freq f (Array.map (fun v -> -.v) d)

let deriv w =
  match w with
  | Real r -> Real (Waveform.Real.derivative r)
  | Freq f ->
    real_of_freq f
      (Deriv.first ~x:f.Waveform.Freq.freqs ~y:(Waveform.Freq.mag f))

let stability_plot w = Stability.Stability_plot.of_response (as_freq w)

let value_at w x =
  match w with
  | Real r -> Waveform.Real.value_at r x
  | Freq f -> Cx.mag (Waveform.Freq.at f x)

let cross w lvl =
  match w with
  | Real r ->
    (match Waveform.Real.crossings r lvl with [] -> None | c :: _ -> Some c)
  | Freq f ->
    Interp.first_crossing ~x:f.Waveform.Freq.freqs ~y:(Waveform.Freq.mag f)
      lvl

let apply name w =
  match String.lowercase_ascii name with
  | "db20" -> db20 w
  | "mag" -> mag w
  | "phase" -> phase_deg w
  | "deriv" -> deriv w
  | "real" -> real_part w
  | "imag" -> imag_part w
  | "groupdelay" -> group_delay w
  | "stab" ->
    let plot = stability_plot w in
    Real
      (Waveform.Real.make plot.Stability.Stability_plot.freqs
         plot.Stability.Stability_plot.p)
  | other -> invalid_arg (Printf.sprintf "Calculator.apply: %S" other)

let names =
  [ "db20"; "mag"; "phase"; "deriv"; "real"; "imag"; "groupdelay"; "stab" ]
