(** Self-contained HTML reports with embedded SVG plots — the shareable
    counterpart of the text reports, standing in for the paper's plotted
    figures (stability plots like Fig 4, annotated summaries like Fig 5). *)

val single_node :
  Circuit.Netlist.t -> Stability.Analysis.node_result -> string
(** A report for one net: the probed magnitude response, the stability
    plot with its peaks, and the damping/phase-margin estimates. *)

val all_nodes :
  Circuit.Netlist.t -> Stability.Analysis.node_result list -> string
(** The all-nodes report: the loop table (Table 2 style), a stability-plot
    chart overlaying the worst node of each loop, and the netlist. *)

val write : string -> string -> unit
(** [write path html] saves a report. *)
