open Numerics

let esc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let page ~title body =
  Printf.sprintf
    {|<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>%s</title>
<style>
body { font-family: sans-serif; margin: 2em auto; max-width: 60em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.15em; margin-top: 1.6em; }
table { border-collapse: collapse; }
th, td { border: 1px solid #bbb; padding: 4px 10px; text-align: left; }
th { background: #f0f0f0; }
pre { background: #f7f7f7; padding: 1em; overflow-x: auto; }
.note { color: #a40; font-size: 0.9em; }
footer { margin-top: 2.5em; color: #777; font-size: 0.85em; }
</style></head><body>
%s
<footer>%s — AC-stability analysis per Milev &amp; Burt, DATE 2005.</footer>
</body></html>
|}
    (esc title) body (esc Diagnostics.tool_version)

let plot_of_node (r : Stability.Analysis.node_result) =
  let plot = r.Stability.Analysis.plot in
  let stab =
    Svgplot.render
      (Svgplot.config ~x_axis:Svgplot.Log
         ~title:(Printf.sprintf "Stability plot at %s" r.node)
         ~x_label:"frequency [Hz]" ~y_label:"P" ())
      [ Svgplot.series "P(f)" plot.Stability.Stability_plot.freqs
          plot.Stability.Stability_plot.p ]
  in
  let mag =
    Svgplot.render
      (Svgplot.config ~x_axis:Svgplot.Log ~y_axis:Svgplot.Log
         ~title:(Printf.sprintf "Probe response |Z| at %s" r.node)
         ~x_label:"frequency [Hz]" ~y_label:"|Z| [Ohm]" ())
      [ Svgplot.series "|Z(f)|" plot.Stability.Stability_plot.freqs
          plot.Stability.Stability_plot.mag ]
  in
  (stab, mag)

let peak_rows (peaks : Stability.Peaks.peak list) =
  peaks
  |> List.map (fun (p : Stability.Peaks.peak) ->
      Printf.sprintf
        "<tr><td>%s</td><td>%sHz</td><td>%.3f</td><td>%s</td><td>%s</td>\
         <td>%s</td></tr>"
        (match p.kind with
         | Stability.Peaks.Complex_pole -> "pole"
         | Stability.Peaks.Complex_zero -> "zero")
        (Engnum.format p.freq) p.value
        (match p.zeta with
         | Some z -> Printf.sprintf "%.3f" z
         | None -> "–")
        (match p.phase_margin_deg with
         | Some pm -> Printf.sprintf "%.1f°" pm
         | None -> "–")
        (esc
           (String.concat ", "
              (List.map
                 (function
                   | Stability.Peaks.End_of_range -> "end-of-range"
                   | Stability.Peaks.Min_max_doublet -> "min/max"
                   | Stability.Peaks.Real_pole_like -> "real-pole-like"
                   | Stability.Peaks.Pole_shoulder -> "shoulder")
                 p.notices))))
  |> String.concat "\n"

let peak_table peaks =
  Printf.sprintf
    "<table><tr><th>kind</th><th>natural frequency</th><th>peak</th>\
     <th>zeta</th><th>est. PM</th><th>notices</th></tr>%s</table>"
    (peak_rows peaks)

let single_node circ (r : Stability.Analysis.node_result) =
  let stab_svg, mag_svg = plot_of_node r in
  let body =
    Printf.sprintf
      {|<h1>Stability analysis of net "%s" — %s</h1>
%s
%s
<h2>Detected peaks</h2>
%s
<h2>Netlist</h2>
<pre>%s</pre>|}
      (esc r.node)
      (esc (Circuit.Netlist.title circ))
      stab_svg mag_svg
      (peak_table r.peaks)
      (esc (Circuit.Netlist.to_spice circ))
  in
  page ~title:(Printf.sprintf "acstab: %s" r.node) body

let all_nodes circ results =
  let loops = Stability.Loops.cluster results in
  let loop_rows =
    loops
    |> List.concat_map (fun (l : Stability.Loops.loop) ->
        List.mapi
          (fun i (m : Stability.Loops.member) ->
            Printf.sprintf
              "<tr>%s<td>%s</td><td>%.6f</td><td>%.2E</td></tr>"
              (if i = 0 then
                 Printf.sprintf
                   "<td rowspan=\"%d\">%sHz%s</td>"
                   (List.length l.Stability.Loops.members)
                   (Engnum.format l.Stability.Loops.natural_freq)
                   (match Stability.Loops.estimated_phase_margin l with
                    | Some pm -> Printf.sprintf "<br>PM ≈ %.0f°" pm
                    | None -> "")
               else "")
              (esc m.Stability.Loops.node)
              (Float.abs m.Stability.Loops.peak.Stability.Peaks.value)
              m.Stability.Loops.peak.Stability.Peaks.freq)
          l.Stability.Loops.members)
    |> String.concat "\n"
  in
  (* Overlay the stability plots of each loop's worst node. *)
  let overlay =
    let ss =
      loops
      |> List.filter_map (fun (l : Stability.Loops.loop) ->
          let node = l.Stability.Loops.worst.Stability.Loops.node in
          List.find_opt
            (fun (r : Stability.Analysis.node_result) -> r.node = node)
            results
          |> Option.map (fun (r : Stability.Analysis.node_result) ->
              let plot = r.Stability.Analysis.plot in
              Svgplot.series node plot.Stability.Stability_plot.freqs
                plot.Stability.Stability_plot.p))
    in
    match ss with
    | [] -> ""
    | _ ->
      Svgplot.render
        (Svgplot.config ~x_axis:Svgplot.Log
           ~title:"Stability plots (worst node per loop)"
           ~x_label:"frequency [Hz]" ~y_label:"P" ())
        ss
  in
  let silent =
    List.filter
      (fun (r : Stability.Analysis.node_result) ->
        r.Stability.Analysis.dominant = None)
      results
  in
  let body =
    Printf.sprintf
      {|<h1>All-nodes stability report — %s</h1>
<h2>Loops (Table 2 style)</h2>
<table><tr><th>loop</th><th>node</th><th>stability peak</th>
<th>natural frequency [Hz]</th></tr>
%s</table>
%s
%s
<h2>Netlist</h2>
<pre>%s</pre>|}
      (esc (Circuit.Netlist.title circ))
      loop_rows overlay
      (if silent = [] then ""
       else
         Printf.sprintf
           "<p class=\"note\">nodes with no complex-pole peak above the \
            threshold: %s</p>"
           (esc
              (String.concat ", "
                 (List.map
                    (fun (r : Stability.Analysis.node_result) -> r.node)
                    silent))))
      (esc (Circuit.Netlist.to_spice circ))
  in
  page ~title:"acstab: all-nodes report" body

let write path html =
  let oc = open_out path in
  output_string oc html;
  close_out oc
