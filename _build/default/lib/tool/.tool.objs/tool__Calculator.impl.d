lib/tool/calculator.ml: Array Cx Deriv Float Interp Numerics Printf Stability String Waveform
