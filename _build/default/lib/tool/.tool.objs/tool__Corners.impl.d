lib/tool/corners.ml: Circuit Job List Printf String
