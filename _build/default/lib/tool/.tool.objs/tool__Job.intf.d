lib/tool/job.mli: Format Result
