lib/tool/session.ml: Array Circuit List Logs Numerics Printf String
