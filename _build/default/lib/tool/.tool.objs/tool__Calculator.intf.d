lib/tool/calculator.mli: Numerics Stability
