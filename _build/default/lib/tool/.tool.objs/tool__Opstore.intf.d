lib/tool/opstore.mli: Circuit Engine
