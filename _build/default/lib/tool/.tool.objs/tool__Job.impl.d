lib/tool/job.ml: Array Domain Format Int List Printexc Result Unix
