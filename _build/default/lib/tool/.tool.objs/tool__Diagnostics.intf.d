lib/tool/diagnostics.mli: Format Result Session
