lib/tool/montecarlo.ml: Circuit Float Format Job List Printf Random Result String
