lib/tool/corners.mli: Circuit Result
