lib/tool/html_report.ml: Buffer Circuit Diagnostics Engnum Float List Numerics Option Printf Stability String Svgplot
