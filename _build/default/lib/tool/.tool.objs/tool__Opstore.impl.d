lib/tool/opstore.ml: Array Circuit Engine List Printf String
