lib/tool/session.mli: Circuit Numerics
