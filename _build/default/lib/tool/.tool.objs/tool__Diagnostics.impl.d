lib/tool/diagnostics.ml: Filename Format List Option Printexc Printf Session String Unix
