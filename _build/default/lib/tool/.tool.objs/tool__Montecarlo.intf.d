lib/tool/montecarlo.mli: Circuit Format Result
