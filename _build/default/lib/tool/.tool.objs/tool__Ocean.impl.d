lib/tool/ocean.ml: Circuit Engine Hashtbl List Printf Session Stability String
