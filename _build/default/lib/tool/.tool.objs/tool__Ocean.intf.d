lib/tool/ocean.mli: Circuit Engine Numerics Session Stability
