lib/tool/html_report.mli: Circuit Stability
