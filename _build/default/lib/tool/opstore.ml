let save (op : Engine.Dcop.t) path =
  let oc = open_out path in
  (try
     Array.iter
       (fun n ->
         Printf.fprintf oc "%s %.17g\n" n (Engine.Dcop.node_v op n))
       (Circuit.Topology.nodes op.Engine.Dcop.mna.Engine.Mna.topo);
     close_out oc
   with e -> close_out_noerr oc; raise e)

let load_nodeset circ path =
  let ic = open_in path in
  let entries = ref [] in
  let lineno = ref 0 in
  (try
     (try
        while true do
          incr lineno;
          let line = String.trim (input_line ic) in
          if line <> "" then
            match String.split_on_char ' ' line with
            | [ n; v ] ->
              (match float_of_string_opt v with
               | Some x -> entries := (n, x) :: !entries
               | None ->
                 failwith
                   (Printf.sprintf "%s:%d: bad voltage %S" path !lineno v))
            | _ ->
              failwith
                (Printf.sprintf "%s:%d: expected 'net voltage'" path !lineno)
        done
      with End_of_file -> ());
     close_in ic
   with e -> close_in_noerr ic; raise e);
  let known = Circuit.Netlist.node_names circ in
  let kept = List.filter (fun (n, _) -> List.mem n known) !entries in
  if kept = [] then circ
  else Circuit.Netlist.add_directive circ (Circuit.Netlist.Nodeset kept)
