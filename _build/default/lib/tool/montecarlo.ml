type spec = {
  passive_sigma : float;
  model_sigma : (string * string * float) list;
}

let default_spec = { passive_sigma = 0.05; model_sigma = [] }

(* Box-Muller on the explicit PRNG state. *)
let gaussian st =
  let u1 = Random.State.float st 1. +. epsilon_float in
  let u2 = Random.State.float st 1. in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let sample ~seed spec circ =
  let st = Random.State.make [| seed; 0x5eed |] in
  let jitter sigma v = v *. (1. +. (sigma *. gaussian st)) in
  let circ =
    Circuit.Netlist.map_devices
      (fun d ->
        match d with
        | Circuit.Netlist.Resistor x ->
          Circuit.Netlist.Resistor
            { x with r = jitter spec.passive_sigma x.r }
        | Circuit.Netlist.Capacitor x ->
          Circuit.Netlist.Capacitor
            { x with c = jitter spec.passive_sigma x.c }
        | Circuit.Netlist.Inductor x ->
          Circuit.Netlist.Inductor
            { x with l = jitter spec.passive_sigma x.l }
        | d -> d)
      circ
  in
  List.fold_left
    (fun c (model_name, param, sigma) ->
      match Circuit.Netlist.find_model c model_name with
      | None -> c
      | Some m ->
        let key = String.lowercase_ascii param in
        let current =
          Circuit.Netlist.model_param m param ~default:Float.nan
        in
        if Float.is_nan current then c
        else
          Circuit.Netlist.add_model c
            { m with
              Circuit.Netlist.params =
                (key, jitter sigma current)
                :: List.remove_assoc key m.Circuit.Netlist.params })
    circ spec.model_sigma

type 'a run = {
  samples : (int * ('a, exn) Result.t) list;
}

let run ?parallel ?(spec = default_spec) ~n ~seed circ analyse =
  let jobs =
    List.init n (fun k ->
        let s = seed + k in
        (Printf.sprintf "mc-%d" s, fun () -> analyse (sample ~seed:s spec circ)))
  in
  let outcomes = Job.run_all ?parallel jobs in
  { samples =
      List.mapi
        (fun k (o : _ Job.outcome) -> (seed + k, o.Job.result))
        outcomes }

type stats = {
  count : int;
  failures : int;
  mean : float;
  sigma : float;
  minimum : float;
  maximum : float;
}

let stats r =
  let ok =
    List.filter_map
      (fun (_, res) -> match res with Ok v -> Some v | Error _ -> None)
      r.samples
  in
  if ok = [] then invalid_arg "Montecarlo.stats: every sample failed";
  let n = float_of_int (List.length ok) in
  let mean = List.fold_left ( +. ) 0. ok /. n in
  let var =
    List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.)) 0. ok /. n
  in
  { count = List.length r.samples;
    failures = List.length r.samples - List.length ok;
    mean;
    sigma = sqrt var;
    minimum = List.fold_left Float.min (List.hd ok) ok;
    maximum = List.fold_left Float.max (List.hd ok) ok }

let yield r ~ok =
  let pass =
    List.length
      (List.filter
         (fun (_, res) -> match res with Ok v -> ok v | Error _ -> false)
         r.samples)
  in
  float_of_int pass /. float_of_int (List.length r.samples)

let pp_stats ppf s =
  Format.fprintf ppf
    "%d samples (%d failed): mean %.4g, sigma %.4g, range [%.4g, %.4g]"
    s.count s.failures s.mean s.sigma s.minimum s.maximum
