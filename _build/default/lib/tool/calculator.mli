(** Waveform calculator — the expression layer the paper's tool uses to
    build the stability plot out of simulator output ("requires OCEAN,
    Spectre and Waveform calculator capabilities").

    Frequency-domain and time-domain waveforms each get a set of named
    unary operations, applicable programmatically or by name (for OCEAN
    scripts read from text). The paper's eq 1.3 is available both as the
    primitive chain (deriv / normalise / deriv / normalise) and as the
    fused ["stab"] operation. *)

type wave =
  | Freq of Numerics.Waveform.Freq.t
  | Real of Numerics.Waveform.Real.t

val db20 : wave -> wave
(** Magnitude in dB (frequency-domain input). *)

val mag : wave -> wave
val phase_deg : wave -> wave
val deriv : wave -> wave
(** d/dx on the waveform's own axis (real output). *)

val real_part : wave -> wave
val imag_part : wave -> wave

val group_delay : wave -> wave
(** -d(phase)/d(omega) in seconds (frequency-domain input). *)

val stability_plot : wave -> Stability.Stability_plot.t
(** Eq 1.3 applied to a frequency response. *)

val value_at : wave -> float -> float
(** Interpolated magnitude/value at a point. *)

val cross : wave -> float -> float option
(** First crossing of a level. *)

val apply : string -> wave -> wave
(** Apply an operation by calculator name: ["db20" | "mag" | "phase" |
    "deriv" | "real" | "imag" | "groupdelay" | "stab"]. ["stab"] returns
    the stability function as a real waveform over frequency. Raises
    [Invalid_argument] for unknown names or type-mismatched input. *)

val names : string list
(** The available operation names. *)
