type t = {
  corner_name : string;
  temp_c : float option;
  model_overrides : (string * (string * float) list) list;
}

let make ?temp_c ?(models = []) corner_name =
  { corner_name; temp_c; model_overrides = models }

let typical = make "tt"

let fast =
  make "ff" ~temp_c:(-40.)
    ~models:
      [ ("MN", [ ("kp", 120e-6); ("vto", 0.7) ]);
        ("MP", [ ("kp", 48e-6); ("vto", 0.8) ]);
        ("QNPN", [ ("bf", 220.); ("cpi", 0.8e-12) ]);
        ("QPNP", [ ("bf", 75.); ("cpi", 1.2e-12) ]) ]

let slow =
  make "ss" ~temp_c:125.
    ~models:
      [ ("MN", [ ("kp", 80e-6); ("vto", 0.9) ]);
        ("MP", [ ("kp", 32e-6); ("vto", 1.0) ]);
        ("QNPN", [ ("bf", 100.); ("cpi", 1.3e-12) ]);
        ("QPNP", [ ("bf", 35.); ("cpi", 1.9e-12) ]) ]

let override_model (m : Circuit.Netlist.model) overrides =
  let params =
    List.fold_left
      (fun acc (k, v) ->
        (String.lowercase_ascii k, v)
        :: List.remove_assoc (String.lowercase_ascii k) acc)
      m.Circuit.Netlist.params overrides
  in
  { m with Circuit.Netlist.params }

let apply corner circ =
  let circ =
    match corner.temp_c with
    | Some t -> Circuit.Netlist.with_temp t circ
    | None -> circ
  in
  List.fold_left
    (fun c (model_name, overrides) ->
      match Circuit.Netlist.find_model c model_name with
      | Some m -> Circuit.Netlist.add_model c (override_model m overrides)
      | None ->
        invalid_arg
          (Printf.sprintf "Corners.apply: circuit has no model %S" model_name))
    circ corner.model_overrides

let across ?parallel corners circ analyse =
  let jobs =
    List.map
      (fun corner ->
        (corner.corner_name, fun () -> analyse (apply corner circ)))
      corners
  in
  Job.run_all ?parallel jobs
  |> List.map (fun (o : _ Job.outcome) -> (o.Job.job_name, o.Job.result))

let temp_sweep ?parallel ~temps circ analyse =
  let jobs =
    List.map
      (fun t ->
        ( Printf.sprintf "%gC" t,
          fun () -> analyse (Circuit.Netlist.with_temp t circ) ))
      temps
  in
  List.map2
    (fun t (o : _ Job.outcome) -> (t, o.Job.result))
    temps
    (Job.run_all ?parallel jobs)
