(** Persisting operating points.

    A solved DC operating point is written as a plain "net voltage" table;
    reloading it attaches the values to a circuit as [.nodeset] hints, so a
    later run (same or edited circuit) starts Newton from the known-good
    solution — the workflow the paper gestures at with saved Analog Artist
    states. Nets that no longer exist are ignored on load. *)

val save : Engine.Dcop.t -> string -> unit

val load_nodeset : Circuit.Netlist.t -> string -> Circuit.Netlist.t
(** Raises [Failure] on malformed files. *)
