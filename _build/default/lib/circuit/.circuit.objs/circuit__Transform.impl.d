lib/circuit/transform.ml: Array List Netlist Printf
