lib/circuit/netlist.ml: Format Hashtbl List Map Numerics Option Printf String
