lib/circuit/parser.ml: Buffer Char Expr Filename Float Hashtbl List Netlist Numerics Option Printf Scanf String
