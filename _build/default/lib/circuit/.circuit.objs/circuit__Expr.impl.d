lib/circuit/expr.ml: Float List Numerics Printf String
