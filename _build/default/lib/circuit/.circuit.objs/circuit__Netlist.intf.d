lib/circuit/netlist.mli: Format Numerics
