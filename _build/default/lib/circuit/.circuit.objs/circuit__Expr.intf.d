lib/circuit/expr.mli:
