lib/circuit/topology.ml: Array Format Hashtbl List Netlist String
