lib/circuit/topology.mli: Format Netlist
