(** Arithmetic expressions for netlist parameters.

    Grammar (case-insensitive names, engineering-notation literals):
    {v
      expr   ::= term (('+' | '-') term)*
      term   ::= unary (('*' | '/') unary)*
      unary  ::= ('+' | '-') unary | power    (unary minus looser than '^')
      power  ::= atom ('^' unary)?            (right-associative)
      atom   ::= number | name | name '(' expr (',' expr)* ')' | '(' expr ')'
    v}
    Built-in functions: [sqrt exp ln log abs min max pow atan tanh]. *)

type env = (string * float) list
(** Variable bindings; names are matched case-insensitively. *)

exception Error of string

val eval : ?env:env -> string -> float
(** Evaluate an expression string. Raises {!Error} on syntax errors,
    unknown names, or wrong arity. *)

val eval_opt : ?env:env -> string -> float option

val value : ?env:env -> string -> float
(** Netlist value field: either a plain engineering-notation number
    (["2.2k"]) or a braced expression (["{rload/2}"]). Raises {!Error}. *)
