(** Non-destructive netlist edits used by the stability tool.

    All functions return a new circuit; the input is never modified. These
    implement the tool features of paper section 4.1: attaching the AC
    current stimulus to a selected net, auto-zeroing every pre-existing AC
    stimulus before the analysis, and the loop-breaking / probe-insertion
    edits used by the baseline (traditional) methods. *)

val probe_name : string
(** Name of the injected stimulus device (["istab_probe"]). *)

val zero_ac_sources : Netlist.t -> Netlist.t
(** Set the AC magnitude of every independent source to zero ("Auto-zero
    all AC sources / stimuli in design prior to running the analysis"). *)

val with_ac_current_probe : ?mag:float -> Netlist.t -> Netlist.node -> Netlist.t
(** [with_ac_current_probe c n] zeroes existing AC stimuli and attaches a
    unit AC current source from ground into net [n]. The node's AC response
    is then the driving-point transimpedance the stability plot needs. *)

val remove_probe : Netlist.t -> Netlist.t

val split_terminal :
  Netlist.t -> device:string -> terminal:int -> new_node:Netlist.node ->
  Netlist.t
(** Detach terminal [terminal] (0-based, in {!Netlist.device_nodes} order)
    of device [device] from its net and reconnect it to the fresh net
    [new_node]. The caller then inserts elements between the old and new
    net. Raises [Invalid_argument] for unknown devices/terminals or when
    [new_node] already exists. *)

val insert_series_vsource :
  Netlist.t -> device:string -> terminal:int -> vname:string ->
  spec:Netlist.source_spec -> Netlist.t * Netlist.node
(** Break the wire at a device terminal and insert a voltage source whose
    positive pin faces the original net. With [spec = dc_source 0.] this is
    a pure ammeter (current sense for Middlebrook injection). Returns the
    circuit and the fresh net name. *)

val break_loop_lc :
  ?l:float -> ?c:float -> Netlist.t -> device:string -> terminal:int ->
  drive:Netlist.node -> Netlist.t
(** Classic open-loop measurement edit: break the feedback wire at the
    device terminal, bridge the break with a huge inductor [l] (default
    1e9 H) so the DC bias still closes, and couple the AC drive net
    [drive] into the downstream side through a huge capacitor [c]
    (default 1e9 F). After this edit, AC loop gain = response at the
    upstream net per unit AC drive. *)
