type env = (string * float) list

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type token =
  | Num of float
  | Name of string
  | Plus | Minus | Star | Slash | Caret | Lparen | Rparen | Comma

let tokenize s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  let is_name_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let is_name c =
    is_name_start c || (c >= '0' && c <= '9') || c = '.'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '+' then (out := Plus :: !out; incr i)
    else if c = '-' then (out := Minus :: !out; incr i)
    else if c = '*' then (out := Star :: !out; incr i)
    else if c = '/' then (out := Slash :: !out; incr i)
    else if c = '^' then (out := Caret :: !out; incr i)
    else if c = '(' then (out := Lparen :: !out; incr i)
    else if c = ')' then (out := Rparen :: !out; incr i)
    else if c = ',' then (out := Comma :: !out; incr i)
    else if (c >= '0' && c <= '9') || c = '.' then begin
      (* Numbers may carry engineering suffixes: consume digits and any
         directly attached name characters, then let Engnum decide. *)
      let start = !i in
      while !i < n && (is_name s.[!i] || ((s.[!i] = '+' || s.[!i] = '-')
                       && !i > start && (s.[!i - 1] = 'e' || s.[!i - 1] = 'E')))
      do incr i done;
      let lit = String.sub s start (!i - start) in
      match Numerics.Engnum.parse lit with
      | Some v -> out := Num v :: !out
      | None -> fail "bad number %S" lit
    end
    else if is_name_start c then begin
      let start = !i in
      while !i < n && is_name s.[!i] do incr i done;
      out := Name (String.lowercase_ascii (String.sub s start (!i - start))) :: !out
    end
    else fail "unexpected character %C" c
  done;
  List.rev !out

let functions : (string * (float list -> float)) list =
  let unary name f = (name, function [ x ] -> f x | _ -> fail "%s: arity" name) in
  let binary name f =
    (name, function [ x; y ] -> f x y | _ -> fail "%s: arity" name)
  in
  [ unary "sqrt" sqrt; unary "exp" exp; unary "ln" log; unary "log" log10;
    unary "abs" Float.abs; unary "atan" atan; unary "tanh" tanh;
    binary "min" Float.min; binary "max" Float.max;
    binary "pow" (fun x y -> Float.pow x y) ]

(* Recursive-descent parser over the token list (held in a ref). *)
let parse_tokens env tokens =
  let toks = ref tokens in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () = match !toks with [] -> () | _ :: r -> toks := r in
  let expect t what =
    match peek () with
    | Some u when u = t -> advance ()
    | _ -> fail "expected %s" what
  in
  let lookup name =
    let matches (k, _) = String.lowercase_ascii k = name in
    match List.find_opt matches env with
    | Some (_, v) -> v
    | None ->
      (match name with
       | "pi" -> Float.pi
       | "e" -> exp 1.
       | _ -> fail "unknown name %S" name)
  in
  let rec expr () =
    let rec loop acc =
      match peek () with
      | Some Plus -> advance (); loop (acc +. term ())
      | Some Minus -> advance (); loop (acc -. term ())
      | _ -> acc
    in
    loop (term ())
  and term () =
    let rec loop acc =
      match peek () with
      | Some Star -> advance (); loop (acc *. factor ())
      | Some Slash -> advance (); loop (acc /. factor ())
      | _ -> acc
    in
    loop (factor ())
  and factor () = unary ()
  and unary () =
    (* Unary minus binds looser than '^' so "-2^2" is -(2^2). *)
    match peek () with
    | Some Minus -> advance (); -.unary ()
    | Some Plus -> advance (); unary ()
    | _ -> power ()
  and power () =
    let base = atom () in
    match peek () with
    | Some Caret -> advance (); Float.pow base (unary ())
    | _ -> base
  and atom () =
    match peek () with
    | Some (Num v) -> advance (); v
    | Some Lparen ->
      advance ();
      let v = expr () in
      expect Rparen ")";
      v
    | Some (Name name) ->
      advance ();
      (match peek () with
       | Some Lparen ->
         advance ();
         let args = ref [ expr () ] in
         let rec more () =
           match peek () with
           | Some Comma -> advance (); args := expr () :: !args; more ()
           | _ -> ()
         in
         more ();
         expect Rparen ")";
         (match List.assoc_opt name functions with
          | Some f -> f (List.rev !args)
          | None -> fail "unknown function %S" name)
       | _ -> lookup name)
    | _ -> fail "unexpected end of expression"
  in
  let v = expr () in
  (match peek () with None -> () | Some _ -> fail "trailing tokens");
  v

let eval ?(env = []) s = parse_tokens env (tokenize s)
let eval_opt ?env s = try Some (eval ?env s) with Error _ -> None

let value ?(env = []) s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && s.[0] = '{' && s.[n - 1] = '}' then
    eval ~env (String.sub s 1 (n - 2))
  else if n >= 2 && s.[0] = '\'' && s.[n - 1] = '\'' then
    eval ~env (String.sub s 1 (n - 2))
  else
    match Numerics.Engnum.parse s with
    | Some v -> v
    | None ->
      (* Bare parameter references are common in hand-written decks. *)
      (match List.find_opt (fun (k, _) -> String.lowercase_ascii k
                                          = String.lowercase_ascii s) env with
       | Some (_, v) -> v
       | None -> fail "bad value %S" s)
