(** SPICE-format netlist parser.

    Supported cards (case-insensitive):
    {v
      Rname n1 n2 value           Cname n1 n2 value [IC=v]
      Lname n1 n2 value [IC=v]
      Vname n+ n- [DC v] [AC mag [phase]] [PULSE(...)|SIN(...)|PWL(...)]
      Iname n+ n- ...same as V...
      Ename n+ n- c+ c- gain      Gname n+ n- c+ c- gm
      Fname n+ n- vsrc gain       Hname n+ n- vsrc rm
      Dname n+ n- model [area]
      Qname nc nb ne model [area]
      Mname nd ng ns nb model [W=v] [L=v]
      Xname n1 ... SUBCKT [p=v ...]
      .subckt NAME n1 ... [p=v ...] / .ends
      .model NAME d|npn|pnp|nmos|pmos [(] k=v ... [)]
      .param k=v ...
      .temp t
      .op  .ac dec|lin n f1 f2  .tran tstep tstop  .stab node|all
      .nodeset v(n)=val ...   .options k=v ...   .include "file"
      .end
    v}
    The first line is the title (SPICE convention) unless it is itself a
    card. Values may be engineering-notation numbers or braced
    [{expressions}] over parameters. Continuation lines start with [+];
    [*] starts a comment line, [;] and [$ ] trailing comments. Subcircuits
    are flattened at parse time: internal devices and nets are prefixed
    with ["xinst."]. *)

exception Parse_error of { line : int; message : string }

val parse_string :
  ?name:string -> ?base_dir:string -> ?first_line_title:bool -> string ->
  Netlist.t
(** Parse a complete netlist from a string. [.include] paths resolve
    relative to [base_dir] (default: the current directory). With
    [first_line_title] (what {!parse_file} uses) the first line is always
    the SPICE title; by default a heuristic keeps inline snippets that
    start directly with cards working. Raises {!Parse_error}. *)

val parse_file : string -> Netlist.t
(** Parse a netlist file; the file name becomes the default title. *)
