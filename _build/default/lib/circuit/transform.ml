let probe_name = "istab_probe"

let zero_spec (spec : Netlist.source_spec) = { spec with ac_mag = 0. }

let zero_ac_sources circ =
  Netlist.map_devices
    (function
      | Netlist.Vsource v -> Netlist.Vsource { v with spec = zero_spec v.spec }
      | Netlist.Isource i -> Netlist.Isource { i with spec = zero_spec i.spec }
      | d -> d)
    circ

let with_ac_current_probe ?(mag = 1.) circ node =
  let circ = zero_ac_sources circ in
  (* npos = ground, nneg = node: positive AC current is pushed into the
     tested net (see the Isource convention in Netlist). *)
  Netlist.isource circ probe_name Netlist.ground node (Netlist.ac_source mag)

let remove_probe circ = Netlist.remove_device circ probe_name

(* Replace terminal [k] of a device positionally (repeated net names on a
   device, e.g. diode-connected transistors, must not be collapsed). *)
let set_terminal_positional d k new_node =
  let nodes = Array.of_list (Netlist.device_nodes d) in
  if k < 0 || k >= Array.length nodes then
    invalid_arg "Transform.split_terminal: terminal index";
  let old = nodes.(k) in
  let updated = Array.copy nodes in
  updated.(k) <- new_node;
  let rebuild d =
    match d with
    | Netlist.Resistor x -> Netlist.Resistor { x with n1 = updated.(0); n2 = updated.(1) }
    | Netlist.Capacitor x ->
      Netlist.Capacitor { x with n1 = updated.(0); n2 = updated.(1) }
    | Netlist.Inductor x ->
      Netlist.Inductor { x with n1 = updated.(0); n2 = updated.(1) }
    | Netlist.Vsource x ->
      Netlist.Vsource { x with npos = updated.(0); nneg = updated.(1) }
    | Netlist.Isource x ->
      Netlist.Isource { x with npos = updated.(0); nneg = updated.(1) }
    | Netlist.Vcvs x ->
      Netlist.Vcvs { x with npos = updated.(0); nneg = updated.(1);
                            cpos = updated.(2); cneg = updated.(3) }
    | Netlist.Vccs x ->
      Netlist.Vccs { x with npos = updated.(0); nneg = updated.(1);
                            cpos = updated.(2); cneg = updated.(3) }
    | Netlist.Cccs x ->
      Netlist.Cccs { x with npos = updated.(0); nneg = updated.(1) }
    | Netlist.Ccvs x ->
      Netlist.Ccvs { x with npos = updated.(0); nneg = updated.(1) }
    | Netlist.Diode x ->
      Netlist.Diode { x with npos = updated.(0); nneg = updated.(1) }
    | Netlist.Bjt x ->
      Netlist.Bjt { x with nc = updated.(0); nb = updated.(1); ne = updated.(2) }
    | Netlist.Mosfet x ->
      Netlist.Mosfet { x with nd = updated.(0); ng = updated.(1);
                              ns = updated.(2); nb = updated.(3) }
    | Netlist.Mutual _ ->
      invalid_arg "Transform.split_terminal: a K element has no terminals"
  in
  (old, rebuild d)

(* When the net being split carries a .nodeset hint, the freshly created
   net needs the same hint: it is the same electrical point, and without it
   a multi-stable circuit's DC solve can fall into an unintended state the
   moment a probe is inserted. *)
let propagate_nodeset circ ~from_ ~to_ =
  let hint =
    List.find_map
      (function
        | Netlist.Nodeset entries -> List.assoc_opt from_ entries
        | _ -> None)
      (Netlist.directives circ)
  in
  match hint with
  | Some v -> Netlist.add_directive circ (Netlist.Nodeset [ (to_, v) ])
  | None -> circ

let split_terminal circ ~device ~terminal ~new_node =
  if List.mem new_node (Netlist.node_names circ) then
    invalid_arg
      (Printf.sprintf "Transform.split_terminal: net %S already exists"
         new_node);
  match Netlist.find_device circ device with
  | None ->
    invalid_arg
      (Printf.sprintf "Transform.split_terminal: no device %S" device)
  | Some d ->
    let old, d' = set_terminal_positional d terminal new_node in
    propagate_nodeset (Netlist.replace_device circ d') ~from_:old ~to_:new_node

let insert_series_vsource circ ~device ~terminal ~vname ~spec =
  match Netlist.find_device circ device with
  | None ->
    invalid_arg
      (Printf.sprintf "Transform.insert_series_vsource: no device %S" device)
  | Some d ->
    let new_node = "__" ^ vname ^ "_n" in
    let old, d' = set_terminal_positional d terminal new_node in
    let circ = Netlist.replace_device circ d' in
    let circ = propagate_nodeset circ ~from_:old ~to_:new_node in
    (* Positive pin faces the original net so a positive branch current
       flows from the original net towards the moved terminal. *)
    (Netlist.vsource circ vname old new_node spec, new_node)

let break_loop_lc ?(l = 1e9) ?(c = 1e9) circ ~device ~terminal ~drive =
  match Netlist.find_device circ device with
  | None ->
    invalid_arg (Printf.sprintf "Transform.break_loop_lc: no device %S" device)
  | Some d ->
    let new_node = "__loopbreak" in
    let old, d' = set_terminal_positional d terminal new_node in
    let circ = Netlist.replace_device circ d' in
    let circ = propagate_nodeset circ ~from_:old ~to_:new_node in
    let circ = Netlist.inductor circ "__lbreak" old new_node l in
    Netlist.capacitor circ "__cbreak" drive new_node c
