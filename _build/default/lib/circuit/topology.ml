type t = {
  names : Netlist.node array;
  table : (Netlist.node, int) Hashtbl.t;
}

let build circ =
  let names = Array.of_list (Netlist.node_names circ) in
  let table = Hashtbl.create (Array.length names) in
  Array.iteri (fun i n -> Hashtbl.replace table n i) names;
  { names; table }

let node_count t = Array.length t.names
let nodes t = Array.copy t.names
let index t n = Hashtbl.find t.table n
let index_opt t n = Hashtbl.find_opt t.table n
let name t i = t.names.(i)

type issue =
  | No_ground
  | Dangling_node of Netlist.node
  | Disconnected of Netlist.node list
  | No_dc_path of Netlist.node list

(* Edges a device contributes for connectivity purposes. [dc] excludes
   capacitors (which are open at DC). Controlled sources connect their
   output nodes to each other (they impose a constraint between them) but a
   VCVS/VCCS control pin carries no current, so for the "dangling" check it
   still counts as a connection. *)
let conductive_pairs ~dc d =
  match d with
  | Netlist.Resistor { n1; n2; _ } | Netlist.Inductor { n1; n2; _ } ->
    [ (n1, n2) ]
  | Netlist.Capacitor { n1; n2; _ } -> if dc then [] else [ (n1, n2) ]
  | Netlist.Vsource { npos; nneg; _ } | Netlist.Isource { npos; nneg; _ }
  | Netlist.Cccs { npos; nneg; _ } | Netlist.Ccvs { npos; nneg; _ } ->
    [ (npos, nneg) ]
  | Netlist.Vcvs { npos; nneg; _ } | Netlist.Vccs { npos; nneg; _ } ->
    [ (npos, nneg) ]
  | Netlist.Diode { npos; nneg; _ } -> [ (npos, nneg) ]
  | Netlist.Bjt { nc; nb; ne; _ } -> [ (nc, nb); (nb, ne); (nc, ne) ]
  | Netlist.Mosfet { nd; ng; ns; nb; _ } ->
    (* The gate is insulated but its bias must come from somewhere else;
       conductively the channel joins d-s and junctions join b. *)
    [ (nd, ns); (ns, nb); (ng, ng) ]
  | Netlist.Mutual _ -> []

let reachable_from_ground circ ~dc =
  let seen = Hashtbl.create 64 in
  let adj = Hashtbl.create 64 in
  let add_edge a b =
    let push k v =
      let cur = try Hashtbl.find adj k with Not_found -> [] in
      Hashtbl.replace adj k (v :: cur)
    in
    push a b;
    push b a
  in
  let canon n = if Netlist.is_ground n then Netlist.ground else n in
  List.iter
    (fun d ->
      List.iter
        (fun (a, b) -> add_edge (canon a) (canon b))
        (conductive_pairs ~dc d))
    (Netlist.devices circ);
  let rec visit n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      List.iter visit (try Hashtbl.find adj n with Not_found -> [])
    end
  in
  visit Netlist.ground;
  seen

let check circ =
  let issues = ref [] in
  if not (Netlist.uses_ground circ) then issues := No_ground :: !issues;
  (* Count terminal attachments per net. *)
  let counts = Hashtbl.create 64 in
  List.iter
    (fun d ->
      List.iter
        (fun n ->
          if not (Netlist.is_ground n) then
            Hashtbl.replace counts n
              (1 + try Hashtbl.find counts n with Not_found -> 0))
        (Netlist.device_nodes d))
    (Netlist.devices circ);
  Hashtbl.iter
    (fun n c -> if c < 2 then issues := Dangling_node n :: !issues)
    counts;
  let all = Netlist.node_names circ in
  let ac_seen = reachable_from_ground circ ~dc:false in
  let missing_ac = List.filter (fun n -> not (Hashtbl.mem ac_seen n)) all in
  if missing_ac <> [] then issues := Disconnected missing_ac :: !issues;
  let dc_seen = reachable_from_ground circ ~dc:true in
  let missing_dc =
    List.filter
      (fun n -> Hashtbl.mem ac_seen n && not (Hashtbl.mem dc_seen n))
      all
  in
  if missing_dc <> [] then issues := No_dc_path missing_dc :: !issues;
  List.rev !issues

let pp_issue ppf = function
  | No_ground -> Format.fprintf ppf "no device connects to ground (node 0)"
  | Dangling_node n -> Format.fprintf ppf "net %S has a single connection" n
  | Disconnected ns ->
    Format.fprintf ppf "nets with no path to ground: %s"
      (String.concat ", " ns)
  | No_dc_path ns ->
    Format.fprintf ppf "nets with no DC path to ground: %s"
      (String.concat ", " ns)
