(** Node indexing and structural sanity checks. *)

type t
(** An index over the non-ground nets of a circuit. *)

val build : Netlist.t -> t
val node_count : t -> int
val nodes : t -> Netlist.node array
(** Net names in index order. *)

val index : t -> Netlist.node -> int
(** Index of a net (raises [Not_found] for unknown nets; ground has no
    index). *)

val index_opt : t -> Netlist.node -> int option
val name : t -> int -> Netlist.node

type issue =
  | No_ground                        (** nothing connects to node 0 *)
  | Dangling_node of Netlist.node    (** net with a single connection *)
  | Disconnected of Netlist.node list
      (** nets with no conductive path to ground *)
  | No_dc_path of Netlist.node list
      (** nets whose every path to ground crosses a capacitor only;
          the DC matrix would be singular without gmin *)

val check : Netlist.t -> issue list
(** Structural diagnostics; an empty list means the circuit looks sound.
    These mirror the sanity checks a simulation environment performs before
    handing a design to the simulator. *)

val pp_issue : Format.formatter -> issue -> unit
