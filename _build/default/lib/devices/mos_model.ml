type params = {
  kp : float;
  vto : float;
  lambda : float;
  cgso : float;
  cgdo : float;
  cox : float;
  cbd : float;
  cbs : float;
  kf : float;
  af : float;
}

let params_of_model m =
  let p name ~default = Circuit.Netlist.model_param m name ~default in
  { kp = p "kp" ~default:2e-5;
    vto = p "vto" ~default:1.0;
    lambda = p "lambda" ~default:0.;
    cgso = p "cgso" ~default:0.;
    cgdo = p "cgdo" ~default:0.;
    cox = p "cox" ~default:0.;
    cbd = p "cbd" ~default:0.;
    cbs = p "cbs" ~default:0.;
    kf = p "kf" ~default:0.;
    af = p "af" ~default:1. }

type region = Cutoff | Triode | Saturation

type dc = {
  ids : float;
  d_ids_dvgs : float;
  d_ids_dvds : float;
  region : region;
  inverted : bool;
}

(* Forward evaluation assuming vds >= 0. *)
let forward p ~beta ~vgs ~vds =
  let vov = vgs -. p.vto in
  if vov <= 0. then (0., 0., 0., Cutoff)
  else begin
    let clm = 1. +. (p.lambda *. vds) in
    if vds < vov then begin
      (* Triode. *)
      let ids = beta *. ((vov *. vds) -. (vds *. vds /. 2.)) *. clm in
      let d_dvgs = beta *. vds *. clm in
      let d_dvds =
        (beta *. (vov -. vds) *. clm)
        +. (beta *. ((vov *. vds) -. (vds *. vds /. 2.)) *. p.lambda)
      in
      (ids, d_dvgs, d_dvds, Triode)
    end
    else begin
      (* Saturation. *)
      let ids = beta /. 2. *. vov *. vov *. clm in
      let d_dvgs = beta *. vov *. clm in
      let d_dvds = beta /. 2. *. vov *. vov *. p.lambda in
      (ids, d_dvgs, d_dvds, Saturation)
    end
  end

let dc p ~w ~l ~vgs ~vds =
  let beta = p.kp *. w /. l in
  if vds >= 0. then begin
    let ids, g_gs, g_ds, region = forward p ~beta ~vgs ~vds in
    { ids; d_ids_dvgs = g_gs; d_ids_dvds = g_ds; region; inverted = false }
  end
  else begin
    (* Exchange drain and source: the device conducts with vgd, -vds. The
       current through the original drain terminal flips sign. With
       vgd = vgs - vds:
         ids = -I(vgd, -vds)
         d ids/d vgs = -dI/dvgs'
         d ids/d vds = -(dI/dvgs' * d vgd/d vds + dI/dvds' * -1)
                     =  dI/dvgs' + dI/dvds'  ... with signs handled below. *)
    let vgd = vgs -. vds in
    let i', g_gs', g_ds', region = forward p ~beta ~vgs:vgd ~vds:(-.vds) in
    { ids = -.i';
      d_ids_dvgs = -.g_gs';
      d_ids_dvds = g_gs' +. g_ds';
      region;
      inverted = true }
  end

type small_signal = {
  gm : float;
  gds : float;
  cgs : float;
  cgd : float;
  cbd : float;
  cbs : float;
}

let small_signal p ~w ~l ~vgs ~vds =
  let d = dc p ~w ~l ~vgs ~vds in
  let cox_total = p.cox *. w *. l in
  let overlap_s = p.cgso *. w and overlap_d = p.cgdo *. w in
  let cgs_ch, cgd_ch =
    match d.region with
    | Cutoff -> (0., 0.)
    | Saturation -> (2. /. 3. *. cox_total, 0.)
    | Triode -> (cox_total /. 2., cox_total /. 2.)
  in
  let cgs, cgd =
    if d.inverted then (overlap_s +. cgd_ch, overlap_d +. cgs_ch)
    else (overlap_s +. cgs_ch, overlap_d +. cgd_ch)
  in
  { gm = d.d_ids_dvgs; gds = d.d_ids_dvds; cgs; cgd; cbd = p.cbd; cbs = p.cbs }
