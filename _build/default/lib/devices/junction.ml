(** Shared pn-junction numerics: guarded exponential and SPICE-style
    junction-voltage limiting, both essential for Newton convergence. *)

(* Beyond [x = explim] the exponential is continued linearly so the Newton
   iteration sees finite, smoothly growing currents instead of overflow. *)
let explim = 80.

(** [guarded_exp x] = (value, derivative) of the guarded exponential. *)
let guarded_exp x =
  if x > explim then begin
    let e = exp explim in
    (e *. (1. +. (x -. explim)), e)
  end
  else begin
    let e = exp x in
    (e, e)
  end

(** Critical voltage above which junction steps must be damped. *)
let vcrit ~is ~vt = vt *. log (vt /. (Float.sqrt 2. *. is))

(** SPICE pnjlim: limit the Newton update of a junction voltage [vnew]
    given the previous iterate [vold]. Returns the limited voltage and a
    flag telling the solver the step was cut (so convergence must not be
    declared on this iteration). *)
let pnjlim ~vt ~vcrit vnew vold =
  if vnew > vcrit && Float.abs (vnew -. vold) > vt +. vt then begin
    if vold > 0. then begin
      let arg = 1. +. ((vnew -. vold) /. vt) in
      if arg > 0. then (vold +. (vt *. log arg), true) else (vcrit, true)
    end
    else (vt *. log (vnew /. vt), true)
  end
  else (vnew, false)
