open Circuit.Netlist

let ramp v_from v_to t_span t = v_from +. ((v_to -. v_from) *. t /. t_span)

let eval_pulse ~v1 ~v2 ~delay ~rise ~fall ~width ~period t =
  if t < delay then v1
  else begin
    let t =
      if period > 0. && Float.is_finite period then
        Float.rem (t -. delay) period
      else t -. delay
    in
    if rise > 0. && t < rise then ramp v1 v2 rise t
    else if t < rise +. width then v2
    else if fall > 0. && t < rise +. width +. fall then
      ramp v2 v1 fall (t -. rise -. width)
    else v1
  end

let eval_sine ~offset ~ampl ~freq ~delay ~damping t =
  if t < delay then offset
  else begin
    let t' = t -. delay in
    offset
    +. (ampl *. exp (-.damping *. t')
       *. sin (2. *. Float.pi *. freq *. t'))
  end

let eval_pwl pts t =
  match pts with
  | [] -> 0.
  | (t0, v0) :: _ when t <= t0 -> v0
  | _ ->
    let rec go = function
      | [ (_, v) ] -> v
      | (t1, v1) :: ((t2, v2) :: _ as rest) ->
        if t <= t2 then
          if t2 = t1 then v2 else v1 +. ((v2 -. v1) *. (t -. t1) /. (t2 -. t1))
        else go rest
      | [] -> 0.
    in
    go pts

let eval ~dc wave t =
  match wave with
  | None -> dc
  | Some (Dc v) -> v
  | Some (Pulse { v1; v2; delay; rise; fall; width; period }) ->
    eval_pulse ~v1 ~v2 ~delay ~rise ~fall ~width ~period t
  | Some (Sine { offset; ampl; freq; delay; damping }) ->
    eval_sine ~offset ~ampl ~freq ~delay ~damping t
  | Some (Pwl pts) -> eval_pwl pts t

let breakpoints wave ~tstop =
  let raw =
    match wave with
    | None | Some (Dc _) -> []
    | Some (Pulse { delay; rise; fall; width; period; _ }) ->
      let single = [ delay; delay +. rise; delay +. rise +. width;
                     delay +. rise +. width +. fall ] in
      if period > 0. && Float.is_finite period then begin
        let out = ref [] in
        let k = ref 0 in
        let continue = ref true in
        while !continue do
          let base = delay +. (float_of_int !k *. period) in
          if base > tstop then continue := false
          else begin
            List.iter
              (fun t ->
                let t = t +. (float_of_int !k *. period) in
                if t <= tstop then out := t :: !out)
              [ delay; delay +. rise; delay +. rise +. width;
                delay +. rise +. width +. fall ];
            incr k
          end
        done;
        !out
      end
      else single
    | Some (Sine { delay; _ }) -> [ delay ]
    | Some (Pwl pts) -> List.map fst pts
  in
  List.sort_uniq compare
    (List.filter (fun t -> t >= 0. && t <= tstop) raw)
