lib/devices/junction.ml: Float
