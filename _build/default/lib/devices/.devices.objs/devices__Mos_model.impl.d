lib/devices/mos_model.ml: Circuit
