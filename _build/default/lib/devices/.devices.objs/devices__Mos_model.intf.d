lib/devices/mos_model.mli: Circuit
