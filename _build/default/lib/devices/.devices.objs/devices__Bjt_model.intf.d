lib/devices/bjt_model.mli: Circuit
