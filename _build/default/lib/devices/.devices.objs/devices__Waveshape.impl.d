lib/devices/waveshape.ml: Circuit Float List
