lib/devices/waveshape.mli: Circuit
