lib/devices/const.ml: Float
