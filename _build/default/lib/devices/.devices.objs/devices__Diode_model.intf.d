lib/devices/diode_model.mli: Circuit
