lib/devices/diode_model.ml: Circuit Const Junction
