lib/devices/bjt_model.ml: Circuit Const Junction
