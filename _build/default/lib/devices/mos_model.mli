(** MOSFET — Shichman–Hodges (SPICE level-1) model, no body effect.

    Model card parameters (lower-case, defaults): [kp] 2e-5 A/V^2 (process
    transconductance), [vto] 1.0 (threshold; the engine negates voltages for
    PMOS so [vto] is given as a positive magnitude either way, but negative
    values are honoured as depletion devices), [lambda] 0 (channel-length
    modulation), [cgso]/[cgdo] 0 F/m (overlap capacitance per metre of
    width), [cox] 0 F/m^2 (gate oxide capacitance per area), [cbd]/[cbs] 0 F
    (junction capacitances, absolute).

    NMOS-referenced; drain-source inversion (vds < 0 during Newton
    iterations) is handled by operating the symmetric model with source and
    drain exchanged. *)

type params = {
  kp : float;
  vto : float;
  lambda : float;
  cgso : float;
  cgdo : float;
  cox : float;
  cbd : float;
  cbs : float;
  kf : float;  (** flicker-noise coefficient on the drain current (0) *)
  af : float;  (** flicker-noise current exponent (1) *)
}

val params_of_model : Circuit.Netlist.model -> params

type region = Cutoff | Triode | Saturation

type dc = {
  ids : float;          (** drain current, NMOS-referenced *)
  d_ids_dvgs : float;
  d_ids_dvds : float;
  region : region;
  inverted : bool;      (** true when evaluated with d and s exchanged *)
}

val dc : params -> w:float -> l:float -> vgs:float -> vds:float -> dc

type small_signal = {
  gm : float;
  gds : float;
  cgs : float;
  cgd : float;
  cbd : float;
  cbs : float;
}

val small_signal :
  params -> w:float -> l:float -> vgs:float -> vds:float -> small_signal
(** Linearisation at an operating point. Channel charge uses the standard
    2/3 Cox WL gate-source split in saturation and a 1/2–1/2 split in
    triode. *)
