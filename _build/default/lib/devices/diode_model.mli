(** Junction diode model.

    Parameters (model card, lower-case): [is] saturation current (1e-14),
    [n] emission coefficient (1), [cj] junction capacitance (0), [eg]
    bandgap (1.11), [xti] saturation-current exponent (3), [tnom] (27).
    The instance [area] scales [is] and [cj]. *)

type params = {
  is : float;
  n : float;
  cj : float;
  eg : float;
  xti : float;
  tnom : float;
  kf : float;  (** flicker-noise coefficient (0 = off) *)
  af : float;  (** flicker-noise current exponent (1) *)
}

val params_of_model : Circuit.Netlist.model -> params

type dc = {
  id : float;   (** junction current for the given vd *)
  gd : float;   (** d id / d vd *)
  limited : bool;  (** the Newton step was cut by pnjlim *)
  vd_used : float; (** junction voltage actually evaluated *)
}

val dc : params -> area:float -> temp_c:float -> vd:float -> vd_old:float -> dc
(** Evaluate current and conductance at candidate voltage [vd], limiting the
    step relative to the previous Newton iterate [vd_old]. *)

type small_signal = { gd : float; cj : float }

val small_signal : params -> area:float -> temp_c:float -> vd:float -> small_signal
(** Linearised model at the operating point [vd]. *)
