(** Time-domain evaluation of independent-source waveforms. *)

val eval : dc:float -> Circuit.Netlist.wave option -> float -> float
(** [eval ~dc w t]: source value at time [t]. [None] holds the DC value;
    PWL holds its first/last corner outside its time span; PULSE repeats
    when its period is positive and finite. *)

val breakpoints : Circuit.Netlist.wave option -> tstop:float -> float list
(** Times in [0, tstop] where the waveform has slope discontinuities; the
    transient integrator shrinks its step to land on these exactly. Sorted
    ascending, deduplicated. *)
