type params = {
  is : float;
  n : float;
  cj : float;
  eg : float;
  xti : float;
  tnom : float;
  kf : float;
  af : float;
}

let params_of_model m =
  let p name ~default = Circuit.Netlist.model_param m name ~default in
  { is = p "is" ~default:1e-14;
    n = p "n" ~default:1.;
    cj = p "cj" ~default:0.;
    eg = p "eg" ~default:1.11;
    xti = p "xti" ~default:3.;
    tnom = p "tnom" ~default:Const.default_tnom_celsius;
    kf = p "kf" ~default:0.;
    af = p "af" ~default:1. }

let effective_is p ~area ~temp_c =
  area *. p.is
  *. Const.is_temp_factor ~temp_c ~tnom_c:p.tnom ~eg:p.eg ~xti:p.xti

type dc = { id : float; gd : float; limited : bool; vd_used : float }

let dc p ~area ~temp_c ~vd ~vd_old =
  let vt = p.n *. Const.thermal_voltage temp_c in
  let is = effective_is p ~area ~temp_c in
  let vcrit = Junction.vcrit ~is ~vt in
  let vd_used, limited = Junction.pnjlim ~vt ~vcrit vd vd_old in
  let e, de = Junction.guarded_exp (vd_used /. vt) in
  (* gmin-free raw junction; the solver adds its own gmin in parallel. *)
  let id = is *. (e -. 1.) in
  let gd = is *. de /. vt in
  { id; gd; limited; vd_used }

type small_signal = { gd : float; cj : float }

let small_signal p ~area ~temp_c ~vd =
  let vt = p.n *. Const.thermal_voltage temp_c in
  let is = effective_is p ~area ~temp_c in
  let e, _ = Junction.guarded_exp (vd /. vt) in
  { gd = is *. e /. vt; cj = area *. p.cj }
