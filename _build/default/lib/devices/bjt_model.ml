type params = {
  is : float;
  bf : float;
  br : float;
  vaf : float;
  cpi : float;
  cmu : float;
  ccs : float;
  eg : float;
  xti : float;
  tnom : float;
  kf : float;
  af : float;
}

let params_of_model m =
  let p name ~default = Circuit.Netlist.model_param m name ~default in
  let alias a b ~default = p a ~default:(p b ~default) in
  { is = p "is" ~default:1e-16;
    bf = p "bf" ~default:100.;
    br = p "br" ~default:1.;
    vaf = p "vaf" ~default:0.;
    cpi = alias "cpi" "cje" ~default:0.;
    cmu = alias "cmu" "cjc" ~default:0.;
    ccs = alias "ccs" "cjs" ~default:0.;
    eg = p "eg" ~default:1.11;
    xti = p "xti" ~default:3.;
    tnom = p "tnom" ~default:Const.default_tnom_celsius;
    kf = p "kf" ~default:0.;
    af = p "af" ~default:1. }

let effective_is p ~area ~temp_c =
  area *. p.is
  *. Const.is_temp_factor ~temp_c ~tnom_c:p.tnom ~eg:p.eg ~xti:p.xti

type dc = {
  ic : float;
  ib : float;
  d_ic_dvbe : float;
  d_ic_dvbc : float;
  d_ib_dvbe : float;
  d_ib_dvbc : float;
  vbe_used : float;
  vbc_used : float;
  limited : bool;
}

(* Early-effect factor kq = 1 - vbc/vaf, clamped away from zero so reverse
   excursions during Newton iterations cannot flip the transport current's
   sign. dkq is d kq / d vbc. *)
let early_factor p vbc =
  if p.vaf <= 0. then (1., 0.)
  else begin
    let kq = 1. -. (vbc /. p.vaf) in
    if kq < 0.1 then (0.1, 0.) else (kq, -1. /. p.vaf)
  end

let dc p ~area ~temp_c ~vbe ~vbc ~vbe_old ~vbc_old =
  let vt = Const.thermal_voltage temp_c in
  let is = effective_is p ~area ~temp_c in
  let vcrit = Junction.vcrit ~is ~vt in
  let vbe_used, lim1 = Junction.pnjlim ~vt ~vcrit vbe vbe_old in
  let vbc_used, lim2 = Junction.pnjlim ~vt ~vcrit vbc vbc_old in
  let ee, dee = Junction.guarded_exp (vbe_used /. vt) in
  let ec, dec = Junction.guarded_exp (vbc_used /. vt) in
  let kq, dkq = early_factor p vbc_used in
  let ibe = is /. p.bf *. (ee -. 1.) in
  let ibc = is /. p.br *. (ec -. 1.) in
  let gbe = is /. p.bf *. dee /. vt in
  let gbc = is /. p.br *. dec /. vt in
  let ict = is *. (ee -. ec) *. kq in
  let d_ict_dvbe = is *. dee /. vt *. kq in
  let d_ict_dvbc = (-.is *. dec /. vt *. kq) +. (is *. (ee -. ec) *. dkq) in
  { ic = ict -. ibc;
    ib = ibe +. ibc;
    d_ic_dvbe = d_ict_dvbe;
    d_ic_dvbc = d_ict_dvbc -. gbc;
    d_ib_dvbe = gbe;
    d_ib_dvbc = gbc;
    vbe_used;
    vbc_used;
    limited = lim1 || lim2 }

type small_signal = {
  gm : float;
  gpi : float;
  gmu : float;
  gout : float;
  cpi : float;
  cmu : float;
  ccs : float;
}

let small_signal p ~area ~temp_c ~vbe ~vbc =
  let d = dc p ~area ~temp_c ~vbe ~vbc ~vbe_old:vbe ~vbc_old:vbc in
  { gm = d.d_ic_dvbe;
    gpi = d.d_ib_dvbe;
    gmu = d.d_ib_dvbc;
    gout = d.d_ic_dvbc;
    cpi = area *. p.cpi;
    cmu = area *. p.cmu;
    ccs = area *. p.ccs }
