(** Bipolar transistor — Ebers-Moll transport model with Early effect.

    Model card parameters (lower-case, with defaults):
    [is] 1e-16, [bf] 100, [br] 1, [vaf] 0 (0 = no Early effect),
    [cpi]/[cje] 0 (base-emitter capacitance), [cmu]/[cjc] 0 (base-collector),
    [ccs]/[cjs] 0 (collector-substrate, to ground), [eg] 1.11, [xti] 3,
    [tnom] 27. Instance [area] scales [is] and all capacitances.

    All quantities below are NPN-referenced: for a PNP the engine negates
    the junction voltages before calling and the currents after. Terminal
    currents flow {e into} collector and base; [ie = -.(ic +. ib)]. *)

type params = {
  is : float;
  bf : float;
  br : float;
  vaf : float;
  cpi : float;
  cmu : float;
  ccs : float;
  eg : float;
  xti : float;
  tnom : float;
  kf : float;  (** flicker-noise coefficient on the base current (0) *)
  af : float;  (** flicker-noise current exponent (1) *)
}

val params_of_model : Circuit.Netlist.model -> params

type dc = {
  ic : float;
  ib : float;
  d_ic_dvbe : float;
  d_ic_dvbc : float;
  d_ib_dvbe : float;
  d_ib_dvbc : float;
  vbe_used : float;
  vbc_used : float;
  limited : bool;
}

val dc :
  params -> area:float -> temp_c:float ->
  vbe:float -> vbc:float -> vbe_old:float -> vbc_old:float -> dc
(** Currents and Jacobian at the candidate junction voltages, with each
    junction limited against its previous Newton iterate. *)

type small_signal = {
  gm : float;    (** d ic / d vbe *)
  gpi : float;   (** d ib / d vbe *)
  gmu : float;   (** d ib / d vbc *)
  gout : float;  (** d ic / d vbc, the (negated) output conductance term *)
  cpi : float;
  cmu : float;
  ccs : float;
}

val small_signal :
  params -> area:float -> temp_c:float -> vbe:float -> vbc:float ->
  small_signal
(** Linearisation at an operating point (no limiting). The classic
    hybrid-pi output conductance is [go = -.(gout +. gmu)] referenced to
    vce; the engine stamps the raw 2x2 Jacobian so no conversion is
    needed. *)
