(** Physical constants and temperature helpers (SI units). *)

let boltzmann = 1.380649e-23
let electron_charge = 1.602176634e-19
let zero_celsius = 273.15
let default_tnom_celsius = 27.

let kelvin_of_celsius c = c +. zero_celsius

(** Thermal voltage kT/q at a temperature in Celsius. *)
let thermal_voltage temp_c =
  boltzmann *. kelvin_of_celsius temp_c /. electron_charge

(** Saturation-current temperature scaling shared by pn junctions:
    Is(T) = Is(Tnom) (T/Tnom)^xti exp(Eg/Vt(Tnom) - Eg/Vt(T)). *)
let is_temp_factor ~temp_c ~tnom_c ~eg ~xti =
  let t = kelvin_of_celsius temp_c and tnom = kelvin_of_celsius tnom_c in
  let vt_t = boltzmann *. t /. electron_charge in
  let vt_tnom = boltzmann *. tnom /. electron_charge in
  Float.pow (t /. tnom) xti *. exp ((eg /. vt_tnom) -. (eg /. vt_t))
