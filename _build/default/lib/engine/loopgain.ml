open Numerics

type result = { freqs : float array; loop_gain : Waveform.Freq.t }

let drive_node = "__lgdrive"

let lc_break ?(l = 1e9) ?(c = 1e9) ~sweep circ ~device ~terminal =
  let circ = Circuit.Transform.zero_ac_sources circ in
  (* Record the net being broken before the edit. *)
  let upstream =
    match Circuit.Netlist.find_device circ device with
    | Some d -> List.nth (Circuit.Netlist.device_nodes d) terminal
    | None ->
      invalid_arg (Printf.sprintf "Loopgain.lc_break: no device %S" device)
  in
  let circ = Circuit.Transform.break_loop_lc ~l ~c circ ~device ~terminal
               ~drive:drive_node in
  let circ =
    Circuit.Netlist.vsource circ "__vlgdrive" drive_node Circuit.Netlist.ground
      (Circuit.Netlist.ac_source 1.)
  in
  let ac = Ac.run ~sweep circ in
  (* The injected unit AC drives the downstream (device-terminal) side; the
     loop response returns on the upstream net. For a negative-feedback
     loop the returned signal is -T * (injected), hence the negation. *)
  let returned = Ac.v ac upstream in
  { freqs = ac.Ac.freqs; loop_gain = Waveform.Freq.neg returned }

(* Middlebrook double injection.

   Break the wire into upstream net A (the rest of the old net) and
   downstream net B (the moved device terminal). Model the linear circuit
   seen from ports A/B (independent sources zeroed) as
     i_into_B = y11 vB + y12 vA
     i_into_A = y21 vB + y22 vA.
   Reconnecting A to B makes the system singular iff
   S = y11 + y12 + y21 + y22 = 0.

   Run V: series source vinj = 1 between A and B. Measure Tv = -vA / vB.
   Run I: 0 V ammeter between A and B plus 1 A AC injected into B. With
   probe current i (flowing A -> B), the current into the B-side network is
   1 + i and into the A-side network is -i; measure Ti = -i / (1 + i).
   Then
     T = (Tv Ti - 1) / (Tv + Ti + 2)
   equals -1 exactly when S = 0, for any y12 (bidirectional break), and
   reduces to y21 / (y11 + y22) for a unilateral break — the loop gain with
   loading accounted for. T already carries the standard convention
   (T(0) > 0 for a stable negative-feedback loop, instability when T hits
   -1), matching {!lc_break}. *)
let middlebrook ~sweep circ ~device ~terminal =
  let circ = Circuit.Transform.zero_ac_sources circ in
  (* Run V: series voltage injection. *)
  let run_v =
    let c, node_b =
      Circuit.Transform.insert_series_vsource circ ~device ~terminal
        ~vname:"__vinj" ~spec:(Circuit.Netlist.ac_source 1.)
    in
    let node_a =
      match Circuit.Netlist.find_device c "__vinj" with
      | Some (Circuit.Netlist.Vsource { npos; _ }) -> npos
      | _ -> assert false
    in
    let ac = Ac.run ~sweep c in
    let va = Ac.v ac node_a and vb = Ac.v ac node_b in
    ( ac.Ac.freqs,
      Array.mapi
        (fun k a -> Cx.neg (Cx.( /: ) a vb.Waveform.Freq.h.(k)))
        va.Waveform.Freq.h )
  in
  (* Run I: ammeter + shunt current injection into the B side. *)
  let run_i =
    let c, node_b =
      Circuit.Transform.insert_series_vsource circ ~device ~terminal
        ~vname:"__vamm" ~spec:(Circuit.Netlist.dc_source 0.)
    in
    let c =
      Circuit.Netlist.isource c "__iinj" Circuit.Netlist.ground node_b
        (Circuit.Netlist.ac_source 1.)
    in
    let ac = Ac.run ~sweep c in
    let i_probe = Ac.branch_i ac "__vamm" in
    Array.map
      (fun i -> Cx.neg (Cx.( /: ) i (Cx.( +: ) Cx.one i)))
      i_probe.Waveform.Freq.h
  in
  let freqs, tv = run_v in
  let ti = run_i in
  let t =
    Array.mapi
      (fun k tvk ->
        let tik = ti.(k) in
        let num = Cx.( -: ) (Cx.( *: ) tvk tik) Cx.one in
        let den = Cx.( +: ) (Cx.( +: ) tvk tik) (Cx.of_float 2.) in
        Cx.( /: ) num den)
      tv
  in
  { freqs; loop_gain = Waveform.Freq.make freqs t }

let margins r = Measure.margins r.loop_gain
