(** Small-signal linearisation of the nonlinear devices at an operating
    point.

    Produces a list of linear primitives (conductances, transconductance
    quads and capacitances) equivalent to each diode/BJT/MOSFET around the
    bias point. The AC analysis stamps these; tests can inspect them. *)

type prim =
  | L_g of { i : int; j : int; g : float }
      (** conductance between nodes [i], [j] (-1 = ground) *)
  | L_quad of { out_p : int; out_m : int; ctrl_p : int; ctrl_m : int;
                gm : float }
      (** VCCS: current [gm * (v ctrl_p - v ctrl_m)] flows out of node
          [out_p], through the element, into [out_m]. *)
  | L_c of { i : int; j : int; c : float }

val of_op : Dcop.t -> prim list
(** Primitives for every nonlinear device of the circuit at the given
    operating point. Linear devices are not included (the AC analysis
    stamps them directly). *)

val device_prims :
  temp_c:float -> x:float array -> Mna.elem -> prim list
(** Primitives of a single compiled element (empty for linear elements). *)
