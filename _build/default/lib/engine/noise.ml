open Numerics

type contribution = {
  device : string;
  kind : string;
  psd : float array;
}

type result = {
  freqs : float array;
  total : float array;
  contributions : contribution list;
}

(* A current-noise generator between two node indices (the -1 ground index
   is handled by the excitation builder), with a possibly frequency-
   dependent power spectral density. *)
type source = {
  src_device : string;
  src_kind : string;
  from_node : int;  (* current flows out of this node... *)
  to_node : int;    (* ...and into this one (direction is irrelevant for
                       noise power, but keep the Isource convention) *)
  density : float -> float;  (* A^2/Hz at a frequency *)
}

let boltzmann = Devices.Const.boltzmann
let qe = Devices.Const.electron_charge

let v_at x i = if i < 0 then 0. else x.(i)

(* Enumerate the operating-point noise generators of a compiled circuit. *)
let sources (op : Dcop.t) =
  let mna = op.Dcop.mna in
  let temp_k = Devices.Const.kelvin_of_celsius mna.Mna.temp_c in
  let x = op.Dcop.x in
  let four_kt = 4. *. boltzmann *. temp_k in
  (* Optional 1/f noise: S = kf * |I|^af / f on the device's main
     junction. *)
  let flicker name ~kf ~af ~current ~from_node ~to_node =
    if kf = 0. || current = 0. then []
    else
      [ { src_device = name; src_kind = "flicker"; from_node; to_node;
          density =
            (fun f -> kf *. Float.pow (Float.abs current) af /. f) } ]
  in
  Array.to_list mna.Mna.elems
  |> List.concat_map (fun (name, e) ->
      match e with
      | Mna.E_res { i; j; g } ->
        [ { src_device = name; src_kind = "thermal"; from_node = i;
            to_node = j; density = (fun _ -> four_kt *. g) } ]
      | Mna.E_diode { i; j; p; area } ->
        let vd = v_at x i -. v_at x j in
        let d =
          Devices.Diode_model.dc p ~area ~temp_c:mna.Mna.temp_c ~vd
            ~vd_old:vd
        in
        { src_device = name; src_kind = "shot"; from_node = i; to_node = j;
          density = (fun _ -> 2. *. qe *. Float.abs d.id) }
        :: flicker name ~kf:p.Devices.Diode_model.kf
             ~af:p.Devices.Diode_model.af ~current:d.id ~from_node:i
             ~to_node:j
      | Mna.E_bjt { c; b; e = ne; p; area; sign } ->
        let vbe = sign *. (v_at x b -. v_at x ne) in
        let vbc = sign *. (v_at x b -. v_at x c) in
        let d =
          Devices.Bjt_model.dc p ~area ~temp_c:mna.Mna.temp_c ~vbe ~vbc
            ~vbe_old:vbe ~vbc_old:vbc
        in
        { src_device = name; src_kind = "shot-ic"; from_node = c;
          to_node = ne; density = (fun _ -> 2. *. qe *. Float.abs d.ic) }
        :: { src_device = name; src_kind = "shot-ib"; from_node = b;
             to_node = ne; density = (fun _ -> 2. *. qe *. Float.abs d.ib) }
        :: flicker name ~kf:p.Devices.Bjt_model.kf
             ~af:p.Devices.Bjt_model.af ~current:d.ib ~from_node:b
             ~to_node:ne
      | Mna.E_mos { d; s; g; p; w; l; sign; _ } ->
        let vgs = sign *. (v_at x g -. v_at x s) in
        let vds = sign *. (v_at x d -. v_at x s) in
        let ss = Devices.Mos_model.small_signal p ~w ~l ~vgs ~vds in
        let dc = Devices.Mos_model.dc p ~w ~l ~vgs ~vds in
        { src_device = name; src_kind = "channel"; from_node = d;
          to_node = s;
          density = (fun _ -> four_kt *. (2. /. 3.) *. Float.abs ss.gm) }
        :: flicker name ~kf:p.Devices.Mos_model.kf
             ~af:p.Devices.Mos_model.af ~current:dc.ids ~from_node:d
             ~to_node:s
      | _ -> [])

let run_compiled ?(gmin = 1e-12) ~sweep ~output ~op mna =
  let out_idx = Mna.node_index mna output in
  if out_idx < 0 then invalid_arg "Noise.run: output cannot be ground";
  let srcs = sources op in
  let freqs = Sweep.points sweep in
  let nf = Array.length freqs in
  let per_source = List.map (fun s -> (s, Array.make nf 0.)) srcs in
  let total = Array.make nf 0. in
  let size = mna.Mna.size in
  Array.iteri
    (fun fk f ->
      let omega = 2. *. Float.pi *. f in
      (* Adjoint method: y = A^-T e_out gives the transfer from a unit
         current injected between any node pair as (y_j - y_i). *)
      let prims = Linearize.of_op op in
      let a = Cmat.create size size in
      Ac.matrix_at mna prims ~gmin ~w:omega a;
      let at = Cmat.transpose a in
      let lu = Cmat.lu_factor at in
      let e_out = Array.make size Cx.zero in
      e_out.(out_idx) <- Cx.one;
      let y = Cmat.lu_solve lu e_out in
      let y_at i = if i < 0 then Cx.zero else y.(i) in
      List.iter
        (fun (s, acc) ->
          let h = Cx.( -: ) (y_at s.to_node) (y_at s.from_node) in
          let p = Cx.mag2 h *. s.density f in
          acc.(fk) <- p;
          total.(fk) <- total.(fk) +. p)
        per_source)
    freqs;
  { freqs;
    total;
    contributions =
      List.map
        (fun (s, acc) ->
          { device = s.src_device; kind = s.src_kind; psd = acc })
        per_source }

let run ?gmin ~sweep ~output circ =
  let mna = Mna.compile circ in
  let op = Dcop.solve mna in
  run_compiled ?gmin ~sweep ~output ~op mna

let total_rms r =
  let acc = ref 0. in
  for k = 0 to Array.length r.freqs - 2 do
    let df = r.freqs.(k + 1) -. r.freqs.(k) in
    acc := !acc +. (0.5 *. (r.total.(k) +. r.total.(k + 1)) *. df)
  done;
  sqrt !acc

let nearest_index freqs f =
  let best = ref 0 in
  Array.iteri
    (fun k fk ->
      if Float.abs (log (fk /. f)) < Float.abs (log (freqs.(!best) /. f))
      then best := k)
    freqs;
  !best

let spot_contributions r ~at_hz =
  let k = nearest_index r.freqs at_hz in
  r.contributions
  |> List.map (fun c -> (c.device, c.kind, c.psd.(k)))
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)

let pp_summary ~at_hz ppf r =
  let k = nearest_index r.freqs at_hz in
  Format.fprintf ppf "output noise at %sHz: %sV/rtHz (total rms %sV)@."
    (Engnum.format r.freqs.(k))
    (Engnum.format (sqrt r.total.(k)))
    (Engnum.format (total_rms r));
  List.iter
    (fun (dev, kind, p) ->
      if p > 1e-3 *. r.total.(k) then
        Format.fprintf ppf "  %-12s %-8s %sV/rtHz (%4.1f%%)@." dev kind
          (Engnum.format (sqrt p))
          (100. *. p /. r.total.(k)))
    (spot_contributions r ~at_hz)
