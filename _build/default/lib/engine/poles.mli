(** Exact small-signal pole analysis.

    The linearised circuit is the matrix pencil [G + s C] (conductances and
    transconductances in G, capacitances and inductances in C). Its finite
    generalised eigenvalues are the natural frequencies of the whole
    system — every pole of every loop at once. This is the ground truth the
    stability plot estimates one node at a time, so the two cross-validate
    each other (and do, in the test suite). *)

type pole = {
  s : Complex.t;            (** pole location, rad/s *)
  freq_hz : float;          (** |s| / 2 pi *)
  zeta : float;             (** -Re(s)/|s|; negative for RHP poles *)
}

val system_matrices : ?gmin:float -> Dcop.t -> Numerics.Rmat.t * Numerics.Rmat.t
(** [(g, c)] of the pencil at the given operating point. *)

val compute : ?gmin:float -> ?max_hz:float -> Dcop.t -> pole list
(** All finite poles, sorted by ascending |s|. Generalised eigenvalues with
    [|s| > 2 pi max_hz] (default 1e12 Hz) are artefacts of the singular
    pencil (nodes without storage) and are dropped. *)

val of_circuit : ?gmin:float -> ?max_hz:float -> Circuit.Netlist.t -> pole list

val complex_pairs : pole list -> pole list
(** One representative per complex-conjugate pair (positive imaginary
    part), sorted by natural frequency — the loops the paper's all-nodes
    scan hunts for. *)

val is_stable : pole list -> bool
val pp : Format.formatter -> pole -> unit
