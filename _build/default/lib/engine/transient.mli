(** Transient (time-domain) analysis.

    Trapezoidal integration with backward-Euler start-up steps after t = 0
    and after every source breakpoint (pulse edges, PWL corners), Newton
    iteration at every step. The initial state is the DC operating point
    computed with every source held at its t = 0 waveform value, so a step
    that fires at t > 0 starts from true steady state. [IC=] values on
    capacitors/inductors are accepted by the netlist reader but the
    operating-point start is always used (documented simplification). *)

type options = {
  dc_options : Dcop.options;
  max_newton_per_step : int;   (** Newton iterations per time step (50) *)
  be_steps : int;              (** backward-Euler steps after a breakpoint (2) *)
}

val default_options : options

type result = {
  mna : Mna.t;
  times : float array;
  solutions : float array array;  (** [solutions.(k)] is the unknown vector at [times.(k)] *)
}

exception Step_failure of { time : float; message : string }

val run :
  ?options:options -> tstop:float -> tstep:float -> Circuit.Netlist.t ->
  result
(** Simulate from 0 to [tstop] with nominal step [tstep] (steps are split
    to land exactly on waveform breakpoints). *)

val run_adaptive :
  ?options:options -> ?lte_tol:float -> ?dt_min:float -> ?dt_max:float ->
  tstop:float -> dt_start:float -> Circuit.Netlist.t -> result
(** Variable-step driver: the local truncation error — estimated as the
    difference between the trapezoidal corrector and a quadratic
    predictor through the last three accepted points — is held near
    [lte_tol] (relative, default 1e-3) by shrinking and growing the step
    within [dt_min, dt_max] (default [tstop/20]). Steps land exactly on
    waveform breakpoints and restart with backward-Euler there. Cheaper
    than {!run} on waveforms with quiet stretches, at identical accuracy
    on the active parts. *)

val v : result -> Circuit.Netlist.node -> Waveform.Real.t
val branch_i : result -> string -> Waveform.Real.t
