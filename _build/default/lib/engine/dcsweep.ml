type result = {
  values : float array;
  ops : Dcop.t array;
}

let custom ?options build ~values =
  if Array.length values = 0 then invalid_arg "Dcsweep: no values";
  let prev = ref None in
  let ops =
    Array.map
      (fun v ->
        let circ = build v in
        let mna = Mna.compile circ in
        (* Continuation: start Newton from the previous solution when the
           unknown vector has the same shape. *)
        let x0 =
          match !prev with
          | Some (x : float array) when Array.length x = mna.Mna.size ->
            Some x
          | _ -> None
        in
        let op = Dcop.solve ?options ?x0 mna in
        prev := Some op.Dcop.x;
        op)
      values
  in
  { values = Array.copy values; ops }

let source ?options circ ~name ~values =
  (match Circuit.Netlist.find_device circ name with
   | Some (Circuit.Netlist.Vsource _) | Some (Circuit.Netlist.Isource _) -> ()
   | Some _ ->
     invalid_arg
       (Printf.sprintf "Dcsweep.source: %S is not an independent source" name)
   | None -> invalid_arg (Printf.sprintf "Dcsweep.source: no device %S" name));
  let build v =
    Circuit.Netlist.map_devices
      (fun d ->
        if
          String.lowercase_ascii (Circuit.Netlist.device_name d)
          <> String.lowercase_ascii name
        then d
        else
          match d with
          | Circuit.Netlist.Vsource x ->
            Circuit.Netlist.Vsource { x with spec = { x.spec with dc = v } }
          | Circuit.Netlist.Isource x ->
            Circuit.Netlist.Isource { x with spec = { x.spec with dc = v } }
          | d -> d)
      circ
  in
  custom ?options build ~values

let temperature ?options circ ~values =
  custom ?options (fun t -> Circuit.Netlist.with_temp t circ) ~values

let v r node =
  Numerics.Waveform.Real.make r.values
    (Array.map (fun op -> Dcop.node_v op node) r.ops)

let device_current r name =
  Array.mapi
    (fun k op -> (r.values.(k), Dcop.branch_current op name))
    r.ops
