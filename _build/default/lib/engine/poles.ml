open Numerics

type pole = {
  s : Complex.t;
  freq_hz : float;
  zeta : float;
}

(* Split the small-signal system into the pencil G + sC: everything the AC
   stamper multiplies by jw goes into C, the rest into G. *)
let system_matrices ?(gmin = 1e-12) (op : Dcop.t) =
  let mna = op.Dcop.mna in
  let size = mna.Mna.size in
  let g = Rmat.create size size and c = Rmat.create size size in
  let stamp_g2 i j v =
    Mna.stamp_mat g i i v;
    Mna.stamp_mat g j j v;
    Mna.stamp_mat g i j (-.v);
    Mna.stamp_mat g j i (-.v)
  in
  let stamp_c2 i j v =
    Mna.stamp_mat c i i v;
    Mna.stamp_mat c j j v;
    Mna.stamp_mat c i j (-.v);
    Mna.stamp_mat c j i (-.v)
  in
  Array.iter
    (fun (_, e) ->
      match e with
      | Mna.E_res { i; j; g = gv } -> stamp_g2 i j gv
      | Mna.E_cap { i; j; c = cv; _ } -> stamp_c2 i j cv
      | Mna.E_ind { i; j; l; br; _ } ->
        Mna.stamp_mat g i br 1.;
        Mna.stamp_mat g j br (-1.);
        Mna.stamp_mat g br i 1.;
        Mna.stamp_mat g br j (-1.);
        Mna.stamp_mat c br br (-.l)
      | Mna.E_vsrc { i; j; br; _ } ->
        Mna.stamp_mat g i br 1.;
        Mna.stamp_mat g j br (-1.);
        Mna.stamp_mat g br i 1.;
        Mna.stamp_mat g br j (-1.)
      | Mna.E_isrc _ -> ()
      | Mna.E_vcvs { i; j; ci; cj; br; gain } ->
        Mna.stamp_mat g i br 1.;
        Mna.stamp_mat g j br (-1.);
        Mna.stamp_mat g br i 1.;
        Mna.stamp_mat g br j (-1.);
        Mna.stamp_mat g br ci (-.gain);
        Mna.stamp_mat g br cj gain
      | Mna.E_vccs { i; j; ci; cj; gm } ->
        Mna.stamp_mat g i ci gm;
        Mna.stamp_mat g i cj (-.gm);
        Mna.stamp_mat g j ci (-.gm);
        Mna.stamp_mat g j cj gm
      | Mna.E_cccs { i; j; cbr; gain } ->
        Mna.stamp_mat g i cbr gain;
        Mna.stamp_mat g j cbr (-.gain)
      | Mna.E_ccvs { i; j; cbr; br; rm } ->
        Mna.stamp_mat g i br 1.;
        Mna.stamp_mat g j br (-1.);
        Mna.stamp_mat g br i 1.;
        Mna.stamp_mat g br j (-1.);
        Mna.stamp_mat g br cbr (-.rm)
      | Mna.E_mut { br1; br2; m } ->
        Mna.stamp_mat c br1 br2 (-.m);
        Mna.stamp_mat c br2 br1 (-.m)
      | Mna.E_diode _ | Mna.E_bjt _ | Mna.E_mos _ -> ())
    mna.Mna.elems;
  List.iter
    (function
      | Linearize.L_g { i; j; g = gv } -> stamp_g2 i j gv
      | Linearize.L_c { i; j; c = cv } -> stamp_c2 i j cv
      | Linearize.L_quad { out_p; out_m; ctrl_p; ctrl_m; gm } ->
        Mna.stamp_mat g out_p ctrl_p gm;
        Mna.stamp_mat g out_p ctrl_m (-.gm);
        Mna.stamp_mat g out_m ctrl_p (-.gm);
        Mna.stamp_mat g out_m ctrl_m gm)
    (Linearize.of_op op);
  for i = 0 to mna.Mna.n_nodes - 1 do
    Rmat.add_to g i i gmin
  done;
  (g, c)

let compute ?gmin ?(max_hz = 1e12) op =
  let g, c = system_matrices ?gmin op in
  let n = Rmat.rows g in
  (* Poles satisfy G x = -s C x. With G invertible (gmin guarantees it),
     the eigenvalues mu of G^-1 C give s = -1/mu; mu ~ 0 corresponds to the
     pencil's infinite eigenvalues (nodes without storage). *)
  let lu = Rmat.lu_factor g in
  let m =
    Rmat.init n n (fun _ _ -> 0.)
  in
  for j = 0 to n - 1 do
    let col = Array.init n (fun i -> Rmat.get c i j) in
    let x = Rmat.lu_solve lu col in
    for i = 0 to n - 1 do
      Rmat.set m i j x.(i)
    done
  done;
  let mus = Eigen.eigenvalues m in
  let smax = 2. *. Float.pi *. max_hz in
  mus
  |> List.filter_map (fun mu ->
      if Cx.mag mu < 1. /. smax then None
      else begin
        let s = Cx.neg (Cx.inv mu) in
        let wn = Cx.mag s in
        Some { s; freq_hz = wn /. (2. *. Float.pi); zeta = -.s.Complex.re /. wn }
      end)
  |> List.sort (fun a b -> compare (Cx.mag a.s) (Cx.mag b.s))

let of_circuit ?gmin ?max_hz circ =
  compute ?gmin ?max_hz (Dcop.solve (Mna.compile circ))

let complex_pairs poles =
  poles
  |> List.filter (fun p ->
      p.s.Complex.im > 1e-9 *. Cx.mag p.s (* one of each conjugate pair *))
  |> List.sort (fun a b -> compare a.freq_hz b.freq_hz)

let is_stable poles = List.for_all (fun p -> p.s.Complex.re < 0.) poles

let pp ppf p =
  Format.fprintf ppf "s = %a rad/s (f = %sHz, zeta = %.4f)" Cx.pp p.s
    (Engnum.format p.freq_hz) p.zeta
