(** Element stamping shared by the DC and transient analyses.

    Real-valued MNA stamps. Capacitors and inductors are handled by the
    caller (open/short at DC, companion models in transient); everything
    else stamps identically in both analyses, with independent-source
    values supplied by a caller-provided valuation so DC can scale sources
    (source stepping) and transient can evaluate waveforms at time t. *)

open Mna

(* Junction-limiting state: two slots per element (vbe/vbc for BJTs, vd for
   diodes). Initialised near a forward-biased junction so the first Newton
   iteration starts the exponentials in a sane region (what SPICE does with
   vcrit). *)
let make_limit_state mna =
  let st = Array.make (2 * Array.length mna.elems) 0. in
  Array.iteri
    (fun k (_, e) ->
      match e with
      | E_diode _ -> st.(2 * k) <- 0.65
      | E_bjt _ ->
        st.(2 * k) <- 0.65;
        st.((2 * k) + 1) <- 0.
      | _ -> ())
    mna.elems;
  st

let v_at x i = if i < 0 then 0. else x.(i)

(* Linear static elements: R, independent sources, controlled sources.
   [src_value] maps a source spec to its present value. *)
let stamp_static mna ~(src_value : Circuit.Netlist.source_spec -> float) a b =
  Array.iter
    (fun (_, e) ->
      match e with
      | E_res { i; j; g } -> stamp_g a i j g
      | E_cap _ | E_ind _ -> ()
      | E_vsrc { i; j; br; spec } ->
        stamp_mat a i br 1.;
        stamp_mat a j br (-1.);
        stamp_mat a br i 1.;
        stamp_mat a br j (-1.);
        stamp_rhs b br (src_value spec)
      | E_isrc { i; j; spec } ->
        let v = src_value spec in
        stamp_rhs b i (-.v);
        stamp_rhs b j v
      | E_vcvs { i; j; ci; cj; br; gain } ->
        stamp_mat a i br 1.;
        stamp_mat a j br (-1.);
        stamp_mat a br i 1.;
        stamp_mat a br j (-1.);
        stamp_mat a br ci (-.gain);
        stamp_mat a br cj gain
      | E_vccs { i; j; ci; cj; gm } ->
        stamp_mat a i ci gm;
        stamp_mat a i cj (-.gm);
        stamp_mat a j ci (-.gm);
        stamp_mat a j cj gm
      | E_cccs { i; j; cbr; gain } ->
        stamp_mat a i cbr gain;
        stamp_mat a j cbr (-.gain)
      | E_ccvs { i; j; cbr; br; rm } ->
        stamp_mat a i br 1.;
        stamp_mat a j br (-1.);
        stamp_mat a br i 1.;
        stamp_mat a br j (-1.);
        stamp_mat a br cbr (-.rm)
      | E_mut _ (* reactive only: no DC stamp *)
      | E_diode _ | E_bjt _ | E_mos _ -> ())
    mna.elems

(* A nonlinear two-junction device with polarity [sign] (+1 NPN/NMOS,
   -1 PNP/PMOS) has terminal current I_node = sign * I(u1, u2) with
   junction voltages u = sign * (V_p - V_m). Linearising around the
   evaluation point u0,
     I_node ~ sign*I(u0) + sign*da*(u1 - u1_0) + sign*db*(u2 - u2_0)
   and since u1 = sign*(V_p1 - V_m1) the matrix coefficient of V_p1 is
   sign^2*da = da: the Jacobian stamps are polarity-independent while the
   RHS constant carries the sign. [da]/[db] and [u1]/[u2] are the
   reference-polarity derivatives and junction voltages. *)
let stamp_terminal a b ~row ~da ~db ~value ~u1 ~u2
    ~(j1 : int * int) ~(j2 : int * int) ~sign =
  let p1, m1 = j1 and p2, m2 = j2 in
  stamp_mat a row p1 da;
  stamp_mat a row m1 (-.da);
  stamp_mat a row p2 db;
  stamp_mat a row m2 (-.db);
  let const = sign *. (value -. (da *. u1) -. (db *. u2)) in
  stamp_rhs b row (-.const)

(* Nonlinear devices linearised around the (limited) junction voltages.
   Returns true when any junction step was limited, which defers
   convergence. [limst] is updated in place with the voltages used. *)
let stamp_nonlinear mna ~x ~limst a b =
  let temp_c = mna.temp_c in
  let limited = ref false in
  Array.iteri
    (fun k (_, e) ->
      match e with
      | E_res _ | E_cap _ | E_ind _ | E_vsrc _ | E_isrc _ | E_vcvs _
      | E_vccs _ | E_cccs _ | E_ccvs _ | E_mut _ -> ()
      | E_diode { i; j; p; area } ->
        let vd = v_at x i -. v_at x j in
        let r =
          Devices.Diode_model.dc p ~area ~temp_c ~vd ~vd_old:limst.(2 * k)
        in
        limst.(2 * k) <- r.vd_used;
        if r.limited then limited := true;
        stamp_g a i j r.gd;
        let const = r.id -. (r.gd *. r.vd_used) in
        stamp_rhs b i (-.const);
        stamp_rhs b j const
      | E_bjt { c; b = nb; e = ne; p; area; sign } ->
        let vbe = sign *. (v_at x nb -. v_at x ne) in
        let vbc = sign *. (v_at x nb -. v_at x c) in
        let r =
          Devices.Bjt_model.dc p ~area ~temp_c ~vbe ~vbc
            ~vbe_old:limst.(2 * k) ~vbc_old:limst.((2 * k) + 1)
        in
        limst.(2 * k) <- r.vbe_used;
        limst.((2 * k) + 1) <- r.vbc_used;
        if r.limited then limited := true;
        (* Junctions in node voltages: vbe = sign (Vb - Ve),
           vbc = sign (Vb - Vc). Terminal currents (into the terminal):
           collector sign*ic, base sign*ib, emitter -sign*(ic+ib). *)
        let j1 = (nb, ne) and j2 = (nb, c) in
        let stamp_t ~row ~value ~da ~db =
          stamp_terminal a b ~row ~da ~db ~value ~u1:r.vbe_used
            ~u2:r.vbc_used ~j1 ~j2 ~sign
        in
        stamp_t ~row:c ~value:r.ic ~da:r.d_ic_dvbe ~db:r.d_ic_dvbc;
        stamp_t ~row:nb ~value:r.ib ~da:r.d_ib_dvbe ~db:r.d_ib_dvbc;
        stamp_t ~row:ne
          ~value:(-.(r.ic +. r.ib))
          ~da:(-.(r.d_ic_dvbe +. r.d_ib_dvbe))
          ~db:(-.(r.d_ic_dvbc +. r.d_ib_dvbc))
      | E_mos { d; g; s; p; w; l; sign; _ } ->
        let vgs = sign *. (v_at x g -. v_at x s) in
        let vds = sign *. (v_at x d -. v_at x s) in
        let r = Devices.Mos_model.dc p ~w ~l ~vgs ~vds in
        (* Junctions: vgs = sign (Vg - Vs), vds = sign (Vd - Vs);
           drain current into drain = sign*ids, source = -sign*ids. *)
        let j1 = (g, s) and j2 = (d, s) in
        let stamp_t ~row ~value ~da ~db =
          stamp_terminal a b ~row ~da ~db ~value ~u1:vgs ~u2:vds ~j1 ~j2
            ~sign
        in
        stamp_t ~row:d ~value:r.ids ~da:r.d_ids_dvgs ~db:r.d_ids_dvds;
        stamp_t ~row:s
          ~value:(-.r.ids)
          ~da:(-.r.d_ids_dvgs)
          ~db:(-.r.d_ids_dvds))
    mna.elems;
  !limited

let stamp_gmin mna ~gmin a =
  for i = 0 to mna.n_nodes - 1 do
    Numerics.Rmat.add_to a i i gmin
  done
