include module type of Numerics.Waveform
