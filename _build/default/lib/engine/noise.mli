(** Small-signal noise analysis.

    Motivated by the paper's section 1.2: "in an unstable loop, inherent
    device noise or any signal at this frequency can start oscillations" —
    the output noise spectrum of a marginal loop peaks at exactly the
    natural frequency the stability plot reports, so the two views
    corroborate each other.

    Sources modelled at the operating point:
    - resistors: thermal, S_i = 4kT/R;
    - diodes: shot, S_i = 2 q Id;
    - BJTs: collector shot 2 q Ic (c-e) and base shot 2 q Ib (b-e);
    - MOSFETs: channel thermal 4 k T (2/3) gm (d-s).
    Flicker noise is supported through the optional model parameters [kf]
    and [af] (S_i = kf * I^af / f, added to the device's main junction);
    it defaults to off. Correlations are neglected (standard practice at
    this model level).

    The computation uses the adjoint (transposed-system) method: one extra
    factorisation per frequency gives the transfer from every noise source
    to the chosen output at once. *)

type contribution = {
  device : string;
  kind : string;            (** "thermal" | "shot-ic" | "shot-ib" |
                                "channel" | "flicker" *)
  psd : float array;        (** its share of the output PSD, V^2/Hz *)
}

type result = {
  freqs : float array;
  total : float array;      (** output noise PSD, V^2/Hz *)
  contributions : contribution list;
}

val run :
  ?gmin:float -> sweep:Numerics.Sweep.t -> output:Circuit.Netlist.node ->
  Circuit.Netlist.t -> result

val run_compiled :
  ?gmin:float -> sweep:Numerics.Sweep.t -> output:Circuit.Netlist.node ->
  op:Dcop.t -> Mna.t -> result

val total_rms : result -> float
(** sqrt of the PSD integrated over the sweep (trapezoidal on the actual
    grid), volts. *)

val spot_contributions : result -> at_hz:float -> (string * string * float) list
(** [(device, kind, V^2/Hz)] at the grid point nearest [at_hz], sorted by
    descending contribution. *)

val pp_summary : at_hz:float -> Format.formatter -> result -> unit
