lib/engine/noise.ml: Ac Array Cmat Cx Dcop Devices Engnum Float Format Linearize List Mna Numerics Sweep
