lib/engine/waveform.ml: Numerics
