lib/engine/linearize.ml: Array Dcop Devices List Mna
