lib/engine/dcop.mli: Circuit Format Mna Numerics
