lib/engine/mna.mli: Circuit Complex Devices Numerics
