lib/engine/loopgain.mli: Circuit Measure Numerics Waveform
