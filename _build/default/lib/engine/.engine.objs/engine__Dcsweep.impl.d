lib/engine/dcsweep.ml: Array Circuit Dcop Mna Numerics Printf String
