lib/engine/measure.mli: Format Waveform
