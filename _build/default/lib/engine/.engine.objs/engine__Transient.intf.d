lib/engine/transient.mli: Circuit Dcop Mna Waveform
