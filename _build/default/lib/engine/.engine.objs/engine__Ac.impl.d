lib/engine/ac.ml: Array Circuit Cmat Complex Cx Dcop Float Linearize List Mna Numerics Sweep Waveform
