lib/engine/transient.ml: Array Circuit Dcop Devices Float Int List Mna Option Stamps Waveform
