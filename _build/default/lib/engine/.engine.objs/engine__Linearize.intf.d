lib/engine/linearize.mli: Dcop Mna
