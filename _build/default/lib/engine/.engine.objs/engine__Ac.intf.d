lib/engine/ac.mli: Circuit Complex Dcop Linearize Mna Numerics Waveform
