lib/engine/waveform.mli: Numerics
