lib/engine/mna.ml: Array Circuit Complex Devices Hashtbl List Netlist Numerics Printf String Topology
