lib/engine/measure.ml: Array Float Format Numerics Option Waveform
