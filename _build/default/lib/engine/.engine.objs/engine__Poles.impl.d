lib/engine/poles.ml: Array Complex Cx Dcop Eigen Engnum Float Format Linearize List Mna Numerics Rmat
