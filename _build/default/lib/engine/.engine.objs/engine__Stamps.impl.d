lib/engine/stamps.ml: Array Circuit Devices Mna Numerics
