lib/engine/noise.mli: Circuit Dcop Format Mna Numerics
