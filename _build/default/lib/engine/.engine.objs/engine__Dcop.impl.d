lib/engine/dcop.ml: Array Circuit Devices Float Format List Logs Mna Numerics Printf Stamps
