lib/engine/dcsweep.mli: Circuit Dcop Numerics
