lib/engine/poles.mli: Circuit Complex Dcop Format Numerics
