lib/engine/loopgain.ml: Ac Array Circuit Cx List Measure Numerics Printf Waveform
