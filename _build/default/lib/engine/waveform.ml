(** Re-export of {!Numerics.Waveform} under the engine namespace: analyses
    return waveforms, so keeping [Engine.Waveform] spares users a second
    import. *)

include Numerics.Waveform
