type prim =
  | L_g of { i : int; j : int; g : float }
  | L_quad of { out_p : int; out_m : int; ctrl_p : int; ctrl_m : int;
                gm : float }
  | L_c of { i : int; j : int; c : float }

let v_at x i = if i < 0 then 0. else x.(i)

(* A BJT's 2x2 junction Jacobian decomposes into four quads that satisfy
   KCL by construction (see DESIGN.md section 6). A quad's current leaves
   node [out_p] (KCL row out_p gains +gm*v_ctrl) and re-enters at [out_m];
   the collector current flows from the collector node through the device
   to the emitter node, so
     A = d ic/d vbe flows c->e controlled by (b,e)
     B = d ic/d vbc flows c->e controlled by (b,c)
     C = d ib/d vbe flows b->e controlled by (b,e)
     D = d ib/d vbc flows b->e controlled by (b,c)
   All coefficients are polarity-independent in node-voltage form. *)
let bjt_prims ~temp_c ~x ~c ~b ~e ~p ~area ~sign =
  let vbe = sign *. (v_at x b -. v_at x e) in
  let vbc = sign *. (v_at x b -. v_at x c) in
  let ss = Devices.Bjt_model.small_signal p ~area ~temp_c ~vbe ~vbc in
  [ L_quad { out_p = c; out_m = e; ctrl_p = b; ctrl_m = e; gm = ss.gm };
    L_quad { out_p = c; out_m = e; ctrl_p = b; ctrl_m = c; gm = ss.gout };
    L_quad { out_p = b; out_m = e; ctrl_p = b; ctrl_m = e; gm = ss.gpi };
    L_quad { out_p = b; out_m = e; ctrl_p = b; ctrl_m = c; gm = ss.gmu };
    L_c { i = b; j = e; c = ss.cpi };
    L_c { i = b; j = c; c = ss.cmu };
    L_c { i = c; j = -1; c = ss.ccs } ]

let mos_prims ~x ~d ~g ~s ~b ~p ~w ~l ~sign =
  let vgs = sign *. (v_at x g -. v_at x s) in
  let vds = sign *. (v_at x d -. v_at x s) in
  let ss = Devices.Mos_model.small_signal p ~w ~l ~vgs ~vds in
  [ L_quad { out_p = d; out_m = s; ctrl_p = g; ctrl_m = s; gm = ss.gm };
    L_g { i = d; j = s; g = ss.gds };
    L_c { i = g; j = s; c = ss.cgs };
    L_c { i = g; j = d; c = ss.cgd };
    L_c { i = b; j = d; c = ss.cbd };
    L_c { i = b; j = s; c = ss.cbs } ]

let device_prims ~temp_c ~x elem =
  match elem with
  | Mna.E_diode { i; j; p; area } ->
    let vd = v_at x i -. v_at x j in
    let ss = Devices.Diode_model.small_signal p ~area ~temp_c ~vd in
    [ L_g { i; j; g = ss.gd }; L_c { i; j; c = ss.cj } ]
  | Mna.E_bjt { c; b; e; p; area; sign } ->
    bjt_prims ~temp_c ~x ~c ~b ~e ~p ~area ~sign
  | Mna.E_mos { d; g; s; b; p; w; l; sign } ->
    mos_prims ~x ~d ~g ~s ~b ~p ~w ~l ~sign
  | _ -> []

let of_op (op : Dcop.t) =
  let temp_c = op.mna.Mna.temp_c in
  Array.to_list op.mna.Mna.elems
  |> List.concat_map (fun (_, e) -> device_prims ~temp_c ~x:op.x e)
