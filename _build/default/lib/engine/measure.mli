(** Waveform measurements: step-response metrics and stability margins. *)

type step_metrics = {
  initial : float;
  final : float;
  peak : float;
  peak_time : float;
  overshoot_pct : float;  (** 100 * (peak - final) / (final - initial) *)
  rise_time : float;      (** 10 percent to 90 percent of the step; nan if
                              the edges are not crossed *)
  settle_time : float;    (** last excursion outside a 2 percent band; nan
                              if never settled *)
}

val step_metrics :
  ?initial:float -> ?final:float -> Waveform.Real.t -> step_metrics
(** Analyse a step response. [initial] defaults to the first sample,
    [final] to the last. *)

type margins = {
  unity_freq : float option;  (** first 0 dB crossing of the magnitude *)
  phase_margin_deg : float option;
      (** 180 + phase at the unity crossing (loop-gain convention: phase
          starts near 0 for a stable negative-feedback loop) *)
  phase_180_freq : float option;  (** first -180 degree phase crossing *)
  gain_margin_db : float option;  (** -|T| in dB at that frequency *)
}

val margins : Waveform.Freq.t -> margins
(** Gain/phase margins of a loop-gain response (paper Fig 3 quantities). *)

val pp_margins : Format.formatter -> margins -> unit
