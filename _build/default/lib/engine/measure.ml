type step_metrics = {
  initial : float;
  final : float;
  peak : float;
  peak_time : float;
  overshoot_pct : float;
  rise_time : float;
  settle_time : float;
}

let step_metrics ?initial ?final (w : Waveform.Real.t) =
  let initial = match initial with Some v -> v | None -> w.y.(0) in
  let final = match final with Some v -> v | None -> Waveform.Real.final w in
  let span = final -. initial in
  let rising = span >= 0. in
  let peak_time, peak =
    if rising then Waveform.Real.maximum w else Waveform.Real.minimum w
  in
  let overshoot_pct =
    if span = 0. then 0. else 100. *. (peak -. final) /. span
  in
  let cross lvl = Waveform.Real.crossings w lvl in
  let rise_time =
    let l10 = initial +. (0.1 *. span) and l90 = initial +. (0.9 *. span) in
    match (cross l10, cross l90) with
    | t10 :: _, t90 :: _ -> t90 -. t10
    | _ -> Float.nan
  in
  let settle_time =
    let band = 0.02 *. Float.abs span in
    if band = 0. then Float.nan
    else begin
      (* Last time the waveform is outside the +/- band around final. *)
      let last_out = ref Float.nan in
      Array.iteri
        (fun k y ->
          if Float.abs (y -. final) > band then last_out := w.x.(k))
        w.y;
      !last_out
    end
  in
  { initial; final; peak; peak_time; overshoot_pct; rise_time; settle_time }

type margins = {
  unity_freq : float option;
  phase_margin_deg : float option;
  phase_180_freq : float option;
  gain_margin_db : float option;
}

let margins (t : Waveform.Freq.t) =
  let db = Waveform.Freq.db t in
  let ph = Waveform.Freq.phase_deg t in
  let f = t.freqs in
  let unity_freq = Numerics.Interp.first_crossing ~x:f ~y:db 0. in
  let phase_margin_deg =
    Option.map
      (fun fu -> 180. +. Numerics.Interp.semilogx ~x:f ~y:ph fu)
      unity_freq
  in
  let phase_180_freq = Numerics.Interp.first_crossing ~x:f ~y:ph (-180.) in
  let gain_margin_db =
    Option.map
      (fun f180 -> -.Numerics.Interp.semilogx ~x:f ~y:db f180)
      phase_180_freq
  in
  { unity_freq; phase_margin_deg; phase_180_freq; gain_margin_db }

let pp_margins ppf m =
  let fo ppf = function
    | Some v -> Format.fprintf ppf "%s" (Numerics.Engnum.format v)
    | None -> Format.fprintf ppf "n/a"
  in
  Format.fprintf ppf
    "unity gain at %aHz, PM = %a deg; phase -180 at %aHz, GM = %a dB"
    fo m.unity_freq fo m.phase_margin_deg fo m.phase_180_freq
    fo m.gain_margin_db
