(** DC sweep analysis (the paper's "in-tool DC-sweep (TEMP, device
    parameters) simulation" future-work item).

    Sweeps one quantity — a source value, the temperature, or an arbitrary
    circuit edit — solving the operating point at each step with
    continuation (each solution seeds the next Newton start), which tracks
    a consistent operating branch through multi-stable regions. *)

type result = {
  values : float array;          (** the swept values *)
  ops : Dcop.t array;            (** operating point at each value *)
}

val source :
  ?options:Dcop.options -> Circuit.Netlist.t -> name:string ->
  values:float array -> result
(** Sweep the DC value of the named V/I source. Raises [Invalid_argument]
    when the device is missing or not an independent source. *)

val temperature :
  ?options:Dcop.options -> Circuit.Netlist.t -> values:float array -> result

val custom :
  ?options:Dcop.options -> (float -> Circuit.Netlist.t) ->
  values:float array -> result
(** General form: [custom build ~values] solves [build v] for each value.
    All circuits must share the same node set (the continuation reuses the
    previous solution vector). *)

val v : result -> Circuit.Netlist.node -> Numerics.Waveform.Real.t
(** A node voltage as a waveform over the swept variable (requires the
    swept values to be strictly increasing). *)

val device_current : result -> string -> (float * float) array
(** [(value, branch current)] pairs for a voltage-defined device. *)
