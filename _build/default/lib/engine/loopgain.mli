(** Loop-gain measurement — the "traditional" baselines the paper compares
    its stability plot against (open-loop Bode / phase margin, Fig 3).

    Two methods are provided:

    - {!lc_break}: the classic bench method. The feedback wire is broken at
      a chosen device terminal, re-closed through a huge inductor so the DC
      bias still propagates, and the downstream side is driven through a
      huge capacitor. Exact when the break point is unilateral and
      high-impedance (e.g. a MOS gate); an approximation elsewhere.

    - {!middlebrook}: double (series-voltage + shunt-current) injection at
      the same break point, combined as [T = (Tv Ti - 1) / (Tv + Ti + 2)].
      Exact including bidirectional loading: the combination equals -1
      exactly when the closed loop is singular (derivation in the
      implementation).

    Both return the loop gain with the convention that a stable
    negative-feedback loop has [T(0) > 0] with phase falling from 0 towards
    -180 degrees, so {!Measure.margins} applies directly. *)

type result = { freqs : float array; loop_gain : Waveform.Freq.t }

val lc_break :
  ?l:float -> ?c:float -> sweep:Numerics.Sweep.t -> Circuit.Netlist.t ->
  device:string -> terminal:int -> result
(** Break the wire feeding terminal [terminal] (0-based,
    {!Circuit.Netlist.device_nodes} order) of device [device]. *)

val middlebrook :
  sweep:Numerics.Sweep.t -> Circuit.Netlist.t ->
  device:string -> terminal:int -> result

val margins : result -> Measure.margins
