open Circuit.Netlist

type params = {
  rzero : float;
  c1 : float;
  cload : float;
  vdd : float;
  vcm : float;
  with_bias_cell : bool;
  bias : Bias_zero_tc.params;
  step : float;
}

(* Tuned so the buffer reproduces the paper's headline behaviour: stability
   peak ~ -31 at 3.16 MHz (zeta ~ 0.18), phase margin ~ 20 degrees, step
   overshoot ~ 54 percent, unity crossover ~ 3 MHz. *)
let default_params =
  { rzero = 1e3;
    c1 = 6.2e-12;
    cload = 100e-12;
    vdd = 5.0;
    vcm = 2.5;
    with_bias_cell = true;
    bias = Bias_zero_tc.default_params;
    step = 50e-3 }

let node_out = "out"
let node_in = "inp"
let node_stage1 = "o1"
let feedback_break = ("M1", 1)

let buffer ?(params = default_params) () =
  let p = params in
  let c = empty ~title:"simple 2MHz op-amp buffer (paper Fig 1)" () in
  let c = Models.add_all c in
  let c = vsource c "VDD" "vdd" "0" (dc_source p.vdd) in
  (* Input: DC common mode + AC excitation + step for the Fig 2 transient. *)
  let c =
    vsource c "VIN" node_in "0"
      { dc = p.vcm; ac_mag = 1.; ac_phase_deg = 0.;
        wave =
          Some (Pulse { v1 = p.vcm; v2 = p.vcm +. p.step; delay = 1e-6;
                        rise = 5e-9; fall = 5e-9; width = 1.; period = 0. }) }
  in
  (* First stage: NMOS pair, PMOS mirror load, NMOS tail. With the diode
     side of the mirror on M1 and two inverting stages after it, M1's gate
     is the inverting input — the feedback connection — and M2's gate the
     non-inverting signal input. *)
  let c = mosfet ~w:60e-6 ~l:2e-6 c "M1" ~d:"d1" ~g:node_out ~s:"tail" ~b:"0" "MN" in
  let c = mosfet ~w:60e-6 ~l:2e-6 c "M2" ~d:node_stage1 ~g:node_in ~s:"tail" ~b:"0" "MN" in
  let c = mosfet ~w:30e-6 ~l:2e-6 c "M3" ~d:"d1" ~g:"d1" ~s:"vdd" ~b:"vdd" "MP" in
  let c = mosfet ~w:30e-6 ~l:2e-6 c "M4" ~d:node_stage1 ~g:"d1" ~s:"vdd" ~b:"vdd" "MP" in
  let c = mosfet ~w:30e-6 ~l:2e-6 c "M5" ~d:"tail" ~g:"nbias" ~s:"0" ~b:"0" "MN" in
  (* Second stage: PMOS common source with NMOS sink. *)
  let c = mosfet ~w:120e-6 ~l:1e-6 c "M6" ~d:node_out ~g:node_stage1 ~s:"vdd" ~b:"vdd" "MP" in
  let c = mosfet ~w:60e-6 ~l:2e-6 c "M7" ~d:node_out ~g:"nbias" ~s:"0" ~b:"0" "MN" in
  (* Compensation: rzero + c1 from output to the first-stage output. *)
  let c = resistor c "RZERO" node_out "zx" p.rzero in
  let c = capacitor c "C1" "zx" node_stage1 p.c1 in
  let c = capacitor c "CLOAD" node_out "0" p.cload in
  let c =
    if p.with_bias_cell then Bias_zero_tc.add_to ~params:p.bias c ~vcc:"vdd"
    else vsource c "VBIAS" "nbias" "0" (dc_source 1.0)
  in
  (* The buffer has a second, latched operating point (out = 0, M2 off,
     M6 off) exactly like its real-silicon counterpart; the nodeset steers
     the DC solve to the intended one. *)
  add_directive c
    (Nodeset
       [ (node_out, p.vcm); (node_in, p.vcm); ("tail", p.vcm -. 0.9);
         (node_stage1, p.vdd -. 1.1); ("d1", p.vdd -. 1.1);
         ("nbias", 1.0); ("vdd", p.vdd) ])
