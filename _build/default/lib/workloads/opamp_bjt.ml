open Circuit.Netlist

type params = {
  vcc : float;
  vcm : float;
  rbias : float;
  cc : float;
  rz : float;
  cload : float;
  step : float;
}

let default_params =
  { vcc = 10.; vcm = 5.; rbias = 330e3; cc = 30e-12; rz = 300.;
    cload = 220e-12; step = 50e-3 }

let node_out = "out"
let node_in = "inp"
let feedback_break = ("Q1", 1)

let buffer ?(params = default_params) () =
  let p = params in
  let c = empty ~title:"two-stage bipolar op-amp buffer" () in
  let c = Models.add_all c in
  let c = vsource c "VCC" "vcc" "0" (dc_source p.vcc) in
  let c =
    vsource c "VIN" node_in "0"
      { dc = p.vcm; ac_mag = 1.; ac_phase_deg = 0.;
        wave =
          Some (Pulse { v1 = p.vcm; v2 = p.vcm +. p.step; delay = 1e-6;
                        rise = 5e-9; fall = 5e-9; width = 1.; period = 0. }) }
  in
  (* Bias: Vbe-referenced current through RBIAS into a diode-connected NPN
     (QB), mirrored by Q5 (tail) and Q7 (output sink). *)
  let c = resistor c "RBIAS" "vcc" "nb" p.rbias in
  let c = bjt c "QB" ~c:"nb" ~b:"nb" ~e:"0" "QNPN" in
  (* First stage: Q1 carries the feedback (inverting input via the mirror
     orientation), Q2 the signal. *)
  let c = bjt c "Q1" ~c:"d1" ~b:node_out ~e:"tail" "QNPN" in
  let c = bjt c "Q2" ~c:"o1" ~b:node_in ~e:"tail" "QNPN" in
  let c = bjt c "Q3" ~c:"d1" ~b:"d1" ~e:"vcc" "QPNP" in
  let c = bjt c "Q4" ~c:"o1" ~b:"d1" ~e:"vcc" "QPNP" in
  let c = bjt ~area:2. c "Q5" ~c:"tail" ~b:"nb" ~e:"0" "QNPN" in
  (* Second stage: PNP common emitter, NPN sink. *)
  let c = bjt ~area:4. c "Q6" ~c:node_out ~b:"o1" ~e:"vcc" "QPNP" in
  let c = bjt ~area:4. c "Q7" ~c:node_out ~b:"nb" ~e:"0" "QNPN" in
  (* Compensation and load. *)
  let c = resistor c "RZ" node_out "zx" p.rz in
  let c = capacitor c "CC" "zx" "o1" p.cc in
  let c = capacitor c "CLOAD" node_out "0" p.cload in
  (* The class-A buffer shares the latched off-state of its MOS sibling;
     pin the intended operating point. *)
  add_directive c
    (Nodeset
       [ (node_out, p.vcm); (node_in, p.vcm); ("tail", p.vcm -. 0.65);
         ("o1", p.vcc -. 0.75); ("d1", p.vcc -. 0.75); ("nb", 0.65);
         ("vcc", p.vcc) ])
