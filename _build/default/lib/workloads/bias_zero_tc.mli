(** The zero-TC bias cell of paper Fig 5.

    A current-summing reference: a Delta-Vbe PTAT core (Q1/Q2 with emitter
    ratio [area_ratio] and degeneration [r1]) under a PNP mirror (Q4
    master, Q10 slave). Q5 mirrors the PTAT current into a diode-connected
    NMOS (M8) whose gate is the bias voltage for the op-amp's NMOS current
    sinks; a CTAT current from the buffered 2-Vbe line through [r2] is
    summed into the same diode, so the output current is first-order
    temperature-flat — the cell's namesake.

    The cell also carries a buffered Vbe bias line: a small mirror slave
    (Q3, area [q3_area]) feeds a low-current Vbe diode (Q9) whose node is
    deliberately high-impedance, and an emitter follower (Q6) repeats it
    onto the distribution line "vcasc" with its routing capacitance
    [cline]. The follower's inductive output impedance against [cline]
    forms a genuine local feedback loop resonating in the tens of MHz --
    exactly the kind of loop the paper's all-nodes analysis exposes
    (Table 2) while black-box analysis of the main loop misses it.
    [compensation] (a capacitor at Q3's collector, the paper's suggested
    1 pF fix) damps it. *)

type params = {
  vcc : float;          (** supply (5.0 V) *)
  r1 : float;           (** PTAT degeneration (850 Ohm) *)
  r2 : float;           (** CTAT summing resistor, line to output
                            (14 kOhm; tuned for a flat output current) *)
  rstart : float;       (** start-up bleed (2 MOhm) *)
  area_ratio : float;   (** Q2:Q1 emitter area (8) *)
  q3_area : float;      (** area of the Vbe-leg mirror slave Q3 (0.4) --
                            sets the Vbe node's impedance *)
  q6_area : float;      (** emitter-follower area (0.7) *)
  r9 : float;           (** follower bias resistor (68 kOhm) *)
  cline : float;        (** routing capacitance of the buffered bias line
                            (2 pF) *)
  compensation : float; (** capacitance at Q3's collector; 0 = none *)
}

val default_params : params

val node_q3_collector : Circuit.Netlist.node
(** The net the paper's fix ("adding a 1 pF capacitor at the collector of
    Q3") applies to -- the Vbe reference node ["nvbe"]. *)

val node_bias_out : Circuit.Netlist.node
(** The NMOS bias gate net ("nbias"). *)

val node_bias_line : Circuit.Netlist.node
(** The buffered bias line ("vcasc") that carries the local resonance. *)

val cell : ?params:params -> ?temp_c:float -> unit -> Circuit.Netlist.t
(** Standalone cell with its own supply, for Fig 5 reproduction. The
    temperature must be given at build time so the DC-solve nodeset hints
    can track the junction voltages. *)

val add_to :
  ?params:params -> Circuit.Netlist.t -> vcc:Circuit.Netlist.node ->
  Circuit.Netlist.t
(** Embed the cell into a larger design (shared supply net). Model cards
    are installed if missing; the bias output is {!node_bias_out}. *)

val reference_current : ?params:params -> temp_c:float -> unit -> float
(** Simulated output current (through M8) at a given temperature -- used by
    the temperature-sweep example to demonstrate the zero-TC property. *)
