(** Emitter / source followers with capacitive loads — the classic local
    instability the paper's introduction calls out ("local-instability
    loops in ... emitter or source followers").

    A follower driven from a resistive source presents an inductive output
    impedance (the source resistance divided by the transistor's falling
    current gain); against a capacitive load this is a series-resonant
    circuit damped only by 1/gm. The builders expose the source resistance
    and load capacitance so examples can walk the circuit from safely
    damped to nearly oscillating. *)

val emitter_follower :
  ?rsource:float -> ?cload:float -> ?ibias:float -> unit ->
  Circuit.Netlist.t
(** NPN emitter follower: base driven from ["in"] through [rsource]
    (default 10 kOhm), emitter net ["out"] loaded by [cload] (default
    10 pF) and a current-source bias [ibias] (default 1 mA). Supply 5 V. *)

val source_follower :
  ?rsource:float -> ?cload:float -> ?ibias:float -> unit ->
  Circuit.Netlist.t
(** NMOS source follower with the same interface. *)

val ef_ringing_estimate :
  ?rsource:float -> ?cload:float -> ?ibias:float -> unit -> float * float
(** First-order [(fn, zeta)] prediction for {!emitter_follower}:
    L = rsource * cpi / gm, fn = 1/(2 pi sqrt(L cload)),
    zeta = 1/(2 gm) sqrt(cload / L). Useful as a sanity anchor; the
    simulated peak is the ground truth. *)
