open Circuit.Netlist

let emitter_follower ?(rsource = 10e3) ?(cload = 10e-12) ?(ibias = 1e-3) () =
  let c = empty ~title:"emitter follower with capacitive load" () in
  let c = Models.add_all c in
  let c = vsource c "VCC" "vcc" "0" (dc_source 5.) in
  let c = vsource c "VIN" "in" "0" (ac_source ~dc:2.5 1.) in
  let c = resistor c "RS" "in" "b" rsource in
  let c = bjt c "Q1" ~c:"vcc" ~b:"b" ~e:"out" "QNPN" in
  let c = isource c "IBIAS" "out" "0" (dc_source ibias) in
  capacitor c "CL" "out" "0" cload

let source_follower ?(rsource = 10e3) ?(cload = 10e-12) ?(ibias = 1e-3) () =
  let c = empty ~title:"source follower with capacitive load" () in
  let c = Models.add_all c in
  let c = vsource c "VDD" "vdd" "0" (dc_source 5.) in
  let c = vsource c "VIN" "in" "0" (ac_source ~dc:3.5 1.) in
  let c = resistor c "RS" "in" "g" rsource in
  let c = mosfet ~w:100e-6 ~l:1e-6 c "M1" ~d:"vdd" ~g:"g" ~s:"out" ~b:"0" "MN" in
  let c = isource c "IBIAS" "out" "0" (dc_source ibias) in
  capacitor c "CL" "out" "0" cload

let ef_ringing_estimate ?(rsource = 10e3) ?(cload = 10e-12) ?(ibias = 1e-3)
    () =
  let vt = Devices.Const.thermal_voltage 27. in
  let gm = ibias /. vt in
  let cpi = Circuit.Netlist.model_param Models.npn "cpi" ~default:1e-12 in
  let l_eq = rsource *. cpi /. gm in
  let fn = 1. /. (2. *. Float.pi *. sqrt (l_eq *. cload)) in
  let zeta = 1. /. (2. *. gm) *. sqrt (cload /. l_eq) in
  (fn, zeta)
