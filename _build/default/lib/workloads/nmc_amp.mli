(** Three-stage amplifier with nested Miller compensation (NMC) — a
    two-loop compensation structure, so the all-nodes analysis has two
    genuinely distinct loops to find: the outer unity-feedback loop at the
    GBW and the inner gm3/cm2 loop above it.

    Built from behavioural transconductance stages (VCCS + node load), so
    the textbook design equations hold exactly: with
    [cm1 = 4 (gm1/gm3) cl] and [cm2 = 2 (gm2/gm3) cl] the closed loop is a
    third-order Butterworth (outer loop zeta = 0.707); shrinking [cm2]
    under-damps the inner loop and the stability plot flags it at its own
    natural frequency while the outer loop barely moves. *)

type params = {
  gm1 : float;   (** input stage (100 uS) *)
  gm2 : float;   (** middle stage (400 uS) *)
  gm3 : float;   (** output stage (4 mS) *)
  r1 : float;    (** first-stage load (1 MOhm) *)
  r2 : float;    (** second-stage load (1 MOhm) *)
  ro : float;    (** output load resistance (100 kOhm) *)
  cp1 : float;   (** first-stage parasitic (100 fF) *)
  cp2 : float;   (** second-stage parasitic (100 fF) *)
  cl : float;    (** load capacitance (50 pF) *)
  cm1 : float;   (** outer Miller capacitor *)
  cm2 : float;   (** inner Miller capacitor *)
}

val default_params : params
(** Butterworth-compensated defaults (see above). *)

val butterworth : ?cl:float -> unit -> params
(** Parameters satisfying the textbook NMC design equations for a given
    load. *)

val gbw_hz : params -> float
(** gm1 / (2 pi cm1). *)

val buffer : ?params:params -> unit -> Circuit.Netlist.t
(** Unity-gain follower: input net ["in"], output ["out"], internal stage
    nets ["o1"] and ["o2"]. *)
