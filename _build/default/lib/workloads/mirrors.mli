(** Current-mirror structures — the remaining local-loop family the paper
    names ("local loops often present in current mirrors"). *)

val simple_mirror : ?iref:float -> ?gain:float -> unit -> Circuit.Netlist.t
(** NPN mirror: reference current into a diode-connected master, slave of
    area [gain] loaded by a resistor. Output net ["out"]. *)

val wilson_mirror : ?iref:float -> unit -> Circuit.Netlist.t
(** Wilson mirror — three transistors with an internal feedback loop; its
    loop shows up in an all-nodes scan at the transistors' time constants.
    Output net ["out"]. *)

val cascode_mirror_with_line :
  ?iref:float -> ?cline:float -> unit -> Circuit.Netlist.t
(** Cascode mirror whose gate-bias line carries routing capacitance
    [cline] (default 2 pF) — a mirror variant of the bias-line resonance in
    {!Bias_zero_tc}. Output net ["out"]. *)
