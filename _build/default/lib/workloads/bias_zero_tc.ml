open Circuit.Netlist

type params = {
  vcc : float;
  r1 : float;
  r2 : float;
  rstart : float;
  area_ratio : float;
  q3_area : float;
  q6_area : float;
  r9 : float;
  cline : float;
  compensation : float;
}

let default_params =
  { vcc = 5.0; r1 = 850.; r2 = 14e3; rstart = 2e6; area_ratio = 8.;
    q3_area = 0.03; q6_area = 0.7; r9 = 68e3; cline = 1.5e-12;
    compensation = 0. }

let node_q3_collector = "nvbe"
let node_bias_out = "nbias"
let node_bias_line = "vcasc"

let add_to ?(params = default_params) c ~vcc =
  let c = Models.add_all c in
  (* PNP mirror: Q4 is the diode-connected master on the PTAT branch;
     Q10 feeds the core's left branch, Q5 the output, Q3 the Vbe leg. *)
  let c = bjt c "Q4" ~c:"npb" ~b:"npb" ~e:vcc "QPNP" in
  let c = bjt c "Q10" ~c:"na" ~b:"npb" ~e:vcc "QPNP" in
  (* Delta-Vbe core: Q1 diode-connected, Q2 with emitter degeneration. *)
  let c = bjt c "Q1" ~c:"na" ~b:"na" ~e:"0" "QNPN" in
  let c = bjt ~area:params.area_ratio c "Q2" ~c:"npb" ~b:"na" ~e:"ne2" "QNPN" in
  let c = resistor c "R1" "ne2" "0" params.r1 in
  (* Start-up bleed on the mirror base: with the cell off, npb is pulled
     low, which turns the PNP mirror fully on and feeds the core — the
     zero-current state cannot persist. At equilibrium it only adds
     ~Vcc/rstart of bleed through the diode branch. *)
  let c = resistor c "RSTART" "npb" "0" params.rstart in
  (* Output mirror into a diode-connected NMOS: nbias for the op-amp. *)
  let c = bjt c "Q5" ~c:"nbias" ~b:"npb" ~e:vcc "QPNP" in
  (* M8 is sized so the op-amp's 30/2 and 60/2 sinks mirror the summed
     output current down to ~30/60 uA. *)
  let c = mosfet ~w:92e-6 ~l:2e-6 c "M8" ~d:"nbias" ~g:"nbias" ~s:"0" ~b:"0" "MN" in
  (* Buffered Vbe bias line — the local loop of paper Fig 5. Q3 is a
     deliberately small mirror slave, so the Vbe reference diode Q9 runs at
     a few microamps and its node "nvbe" is high-impedance (1/gm ~ 10k).
     The emitter follower Q6 repeats nvbe onto the distribution line
     "vcasc", which carries its routing capacitance CLINE. Seen from the
     line, the follower's output impedance is inductive (the resistive
     source impedance at its base divided by the transistor's falling
     current gain), so Q6 + CLINE resonate in the tens of MHz: a genuine
     local instability loop that main-loop black-box analysis never sees.
     The paper's fix — a capacitor at Q3's collector — shunts the source
     impedance at the resonance and damps the loop. *)
  let c = bjt ~area:params.q3_area c "Q3" ~c:"nvbe" ~b:"npb" ~e:vcc "QPNP" in
  let c = bjt ~area:0.1 c "Q9" ~c:"nvbe" ~b:"nvbe" ~e:"0" "QNPN" in
  let c = bjt ~area:params.q6_area c "Q6" ~c:"0" ~b:"nvbe" ~e:"vcasc" "QPNP" in
  let c = resistor c "R9" vcc "vcasc" params.r9 in
  let c = capacitor c "CLINE" "vcasc" "0" params.cline in
  (* Zero-TC summing: the buffered line sits at ~2 Vbe (strongly CTAT), so
     the current it pushes through R2 into the output diode falls with
     temperature while the mirrored core current (PTAT) rises; R2 is
     chosen so the sum is first-order flat. The cell's namesake. *)
  let c = resistor c "R2" "vcasc" "nbias" params.r2 in
  let c =
    if params.compensation > 0. then
      capacitor c "CCOMP" node_q3_collector "0" params.compensation
    else c
  in
  (* Any self-biased reference has a degenerate zero-current state; the
     nodeset pins the conducting one. Junction voltages drift ~ -1.8 mV/K,
     so the hints track the circuit's temperature. *)
  let vbe t = 0.66 -. (1.8e-3 *. (t -. 27.)) in
  let t = temp_celsius c in
  add_directive c
    (Nodeset
       [ ("na", vbe t); ("npb", params.vcc -. vbe t -. 0.1);
         ("nbias", 1.0); ("nvbe", vbe t -. 0.02); ("vcasc", 2. *. vbe t);
         ("ne2", 0.05) ])

let cell ?(params = default_params) ?(temp_c = 27.) () =
  let c = empty ~title:"zero-TC bias cell (paper Fig 5)" () in
  let c = with_temp temp_c c in
  let c = vsource c "VCC" "vcc" "0" (dc_source params.vcc) in
  add_to ~params c ~vcc:"vcc"

let reference_current ?(params = default_params) ~temp_c () =
  let circ = cell ~params ~temp_c () in
  let op = Engine.Dcop.solve (Engine.Mna.compile circ) in
  match List.assoc "M8" (Engine.Dcop.device_ops op) with
  | Engine.Dcop.Op_mos { ids; _ } -> ids
  | _ -> assert false
  | exception Not_found -> assert false
