(** A two-stage bipolar op-amp buffer — the all-BJT sibling of
    {!Opamp_2mhz}, in the spirit of the precision-linear parts the paper's
    authors worked on.

    NPN differential pair (Q1/Q2) with PNP mirror load (Q3/Q4) and a
    resistor-programmed tail source (Q5 + RE), PNP common-emitter second
    stage (Q6) with an NPN current-sink load (Q7), Miller compensation
    [cc] with nulling resistor [rz], class-A output. The buffer exercises
    BJT small-signal paths through a full multi-stage loop: gm scaling
    with collector current, base-current loading, Early-effect output
    conductances. *)

type params = {
  vcc : float;     (** supply (10 V) *)
  vcm : float;     (** input common mode (5 V) *)
  rbias : float;   (** tail/bias programming resistor (330 kOhm) *)
  cc : float;      (** Miller capacitor (30 pF) *)
  rz : float;      (** nulling resistor (300 Ohm) *)
  cload : float;   (** load capacitance (220 pF) *)
  step : float;    (** transient step (50 mV) *)
}

val default_params : params
(** Moderately compensated: main loop around 1 MHz with zeta ~ 0.4. *)

val node_out : Circuit.Netlist.node
val node_in : Circuit.Netlist.node

val feedback_break : string * int
(** The feedback wire at Q1's base (terminal 1 of the BJT). A bipolar input
    draws base current, so the LC break is only approximate here —
    Middlebrook is the accurate baseline (see Engine.Loopgain). *)

val buffer : ?params:params -> unit -> Circuit.Netlist.t
