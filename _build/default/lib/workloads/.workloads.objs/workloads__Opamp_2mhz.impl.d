lib/workloads/opamp_2mhz.ml: Bias_zero_tc Circuit Models
