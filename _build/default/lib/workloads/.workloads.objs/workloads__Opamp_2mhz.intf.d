lib/workloads/opamp_2mhz.mli: Bias_zero_tc Circuit
