lib/workloads/filters.mli: Circuit
