lib/workloads/models.ml: Circuit List
