lib/workloads/mirrors.ml: Circuit Models
