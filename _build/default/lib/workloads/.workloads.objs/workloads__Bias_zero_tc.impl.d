lib/workloads/bias_zero_tc.ml: Circuit Engine List Models
