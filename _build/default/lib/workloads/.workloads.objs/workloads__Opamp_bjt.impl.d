lib/workloads/opamp_bjt.ml: Circuit Models
