lib/workloads/follower.mli: Circuit
