lib/workloads/opamp_bjt.mli: Circuit
