lib/workloads/follower.ml: Circuit Devices Float Models
