lib/workloads/filters.ml: Circuit Float
