lib/workloads/nmc_amp.mli: Circuit
