lib/workloads/bias_zero_tc.mli: Circuit
