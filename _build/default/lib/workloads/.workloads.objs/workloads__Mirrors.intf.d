lib/workloads/mirrors.mli: Circuit
