lib/workloads/nmc_amp.ml: Circuit Float
