open Circuit.Netlist

let two_pi = 2. *. Float.pi

let rc_lowpass ?(r = 1e3) ?(c = 1e-9) () =
  let circ = empty ~title:"rc lowpass" () in
  let circ = vsource circ "VIN" "in" "0" (ac_source 1.) in
  let circ = resistor circ "R1" "in" "out" r in
  capacitor circ "C1" "out" "0" c

let rc_lowpass_pole ?(r = 1e3) ?(c = 1e-9) () = 1. /. (two_pi *. r *. c)

let parallel_rlc ?(r = 100.) ?(l = 1e-6) ?(c = 1e-9) () =
  let circ = empty ~title:"parallel rlc tank" () in
  let circ = resistor circ "R1" "n" "0" r in
  let circ = inductor circ "L1" "n" "0" l in
  capacitor circ "C1" "n" "0" c

let parallel_rlc_theory ?(r = 100.) ?(l = 1e-6) ?(c = 1e-9) () =
  (1. /. (two_pi *. sqrt (l *. c)), sqrt (l /. c) /. (2. *. r))

let step_pulse v1 v2 =
  Pulse { v1; v2; delay = 0.; rise = 1e-9; fall = 1e-9; width = 1.;
          period = 0. }

let series_rlc_step ?(r = 20.) ?(l = 1e-3) ?(c = 1e-9) () =
  let circ = empty ~title:"series rlc step" () in
  let circ = vsource circ "VIN" "in" "0"
               (wave_source ~ac_mag:1. (step_pulse 0. 1.)) in
  let circ = resistor circ "R1" "in" "a" r in
  let circ = inductor circ "L1" "a" "b" l in
  capacitor circ "C1" "b" "0" c

let series_rlc_theory ?(r = 20.) ?(l = 1e-3) ?(c = 1e-9) () =
  (1. /. (two_pi *. sqrt (l *. c)), r /. 2. *. sqrt (c /. l))

let notch_with_zero ?(rser = 20.) ?(l = 100e-6) ?(c = 1e-9) ?(rload = 10e3)
    () =
  let circ = empty ~title:"series-lc notch (complex zeros)" () in
  let circ = vsource circ "VIN" "in" "0" (ac_source 1.) in
  let circ = resistor circ "RS" "in" "out" rload in
  let circ = resistor circ "RZ" "out" "x" rser in
  let circ = inductor circ "LZ" "x" "y" l in
  let circ = capacitor circ "CZ" "y" "0" c in
  resistor circ "RL" "out" "0" rload

let notch_zero_theory ?(rser = 20.) ?(l = 100e-6) ?(c = 1e-9) () =
  (1. /. (two_pi *. sqrt (l *. c)), rser /. 2. *. sqrt (c /. l))

let sallen_key_lowpass ?(r = 10e3) ?(c = 1e-9) ?(q = 2.) () =
  if q <= 0.5 then invalid_arg "Filters.sallen_key_lowpass: q > 0.5";
  let k = 3. -. (1. /. q) in
  let circ = empty ~title:"sallen-key lowpass" () in
  let circ = vsource circ "VIN" "in" "0" (ac_source 1.) in
  let circ = resistor circ "R1" "in" "x1" r in
  let circ = resistor circ "R2" "x1" "x2" r in
  let circ = capacitor circ "C2" "x2" "0" c in
  (* Positive-feedback capacitor from the amplifier output. *)
  let circ = capacitor circ "C1" "x1" "out" c in
  (* Ideal amplifier of gain k: out = k * v(x2). *)
  vcvs circ "EAMP" "out" "0" "x2" "0" k

let sallen_key_theory ?(r = 10e3) ?(c = 1e-9) ?(q = 2.) () =
  (1. /. (two_pi *. r *. c), 1. /. (2. *. q))
