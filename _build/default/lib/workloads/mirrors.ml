open Circuit.Netlist

let simple_mirror ?(iref = 100e-6) ?(gain = 1.) () =
  let c = empty ~title:"simple npn current mirror" () in
  let c = Models.add_all c in
  let c = vsource c "VCC" "vcc" "0" (dc_source 5.) in
  let c = isource c "IREF" "vcc" "nd" (dc_source iref) in
  let c = bjt c "Q1" ~c:"nd" ~b:"nd" ~e:"0" "QNPN" in
  let c = bjt ~area:gain c "Q2" ~c:"out" ~b:"nd" ~e:"0" "QNPN" in
  resistor c "RL" "vcc" "out" (2.5 /. (iref *. gain))

let wilson_mirror ?(iref = 100e-6) () =
  let c = empty ~title:"wilson current mirror" () in
  let c = Models.add_all c in
  let c = vsource c "VCC" "vcc" "0" (dc_source 5.) in
  let c = isource c "IREF" "vcc" "nin" (dc_source iref) in
  (* Q1 diode, Q2 mirror slave, Q3 cascode closing the feedback loop. *)
  let c = bjt c "Q1" ~c:"nx" ~b:"nx" ~e:"0" "QNPN" in
  let c = bjt c "Q2" ~c:"nin" ~b:"nx" ~e:"0" "QNPN" in
  let c = bjt c "Q3" ~c:"out" ~b:"nin" ~e:"nx" "QNPN" in
  resistor c "RL" "vcc" "out" (2.5 /. iref)

let cascode_mirror_with_line ?(iref = 100e-6) ?(cline = 2e-12) () =
  let c = empty ~title:"cascode mirror with bias line" () in
  let c = Models.add_all c in
  let c = vsource c "VCC" "vcc" "0" (dc_source 5.) in
  let c = isource c "IREF" "vcc" "nd" (dc_source iref) in
  (* Two-high diode stack biases the cascode gate line. *)
  let c = bjt c "Q1" ~c:"nd" ~b:"nd" ~e:"nd2" "QNPN" in
  let c = bjt c "Q2" ~c:"nd2" ~b:"nd2" ~e:"0" "QNPN" in
  let c = bjt c "Q3" ~c:"ncas" ~b:"nd2" ~e:"0" "QNPN" in
  let c = bjt c "Q4" ~c:"out" ~b:"nline" ~e:"ncas" "QNPN" in
  (* The cascode base is fed from the stack through routing resistance and
     carries the line capacitance. *)
  let c = resistor c "RLINE" "nd" "nline" 5e3 in
  let c = capacitor c "CLINE" "nline" "0" cline in
  resistor c "RL" "vcc" "out" (2.0 /. iref)
