open Circuit.Netlist

type params = {
  gm1 : float;
  gm2 : float;
  gm3 : float;
  r1 : float;
  r2 : float;
  ro : float;
  cp1 : float;
  cp2 : float;
  cl : float;
  cm1 : float;
  cm2 : float;
}

let butterworth ?(cl = 50e-12) () =
  let gm1 = 100e-6 and gm2 = 400e-6 and gm3 = 4e-3 in
  { gm1; gm2; gm3;
    r1 = 1e6; r2 = 1e6; ro = 100e3;
    cp1 = 100e-15; cp2 = 100e-15;
    cl;
    cm1 = 4. *. (gm1 /. gm3) *. cl;
    cm2 = 2. *. (gm2 /. gm3) *. cl }

let default_params = butterworth ()

let gbw_hz p = p.gm1 /. (2. *. Float.pi *. p.cm1)

let buffer ?(params = default_params) () =
  let p = params in
  let c = empty ~title:"three-stage NMC amplifier (buffer)" () in
  let c = vsource c "VIN" "in" "0" (ac_source 1.) in
  (* Stage 1: i = gm1 (v_fb - v_in) into o1 — the input polarity is chosen
     so the o1 -> out path is inverting (Miller action) while the overall
     follower is non-inverting; see the interface comment. *)
  let c = vccs c "G1" "0" "o1" "fb" "in" p.gm1 in
  let c = resistor c "R1" "o1" "0" p.r1 in
  let c = capacitor c "CP1" "o1" "0" p.cp1 in
  (* Stage 2: non-inverting. *)
  let c = vccs c "G2" "0" "o2" "o1" "0" p.gm2 in
  let c = resistor c "R2" "o2" "0" p.r2 in
  let c = capacitor c "CP2" "o2" "0" p.cp2 in
  (* Stage 3: inverting. *)
  let c = vccs c "G3" "out" "0" "o2" "0" p.gm3 in
  let c = resistor c "RO" "out" "0" p.ro in
  let c = capacitor c "CL" "out" "0" p.cl in
  (* Nested Miller capacitors. *)
  let c = capacitor c "CM1" "out" "o1" p.cm1 in
  let c = capacitor c "CM2" "out" "o2" p.cm2 in
  (* Unity feedback through an explicit wire (breakable for baselines). *)
  resistor c "RFB" "out" "fb" 1e-3
