(** Passive and active filter circuits with known pole/zero mathematics —
    fixtures for tests and examples.

    Every builder returns a circuit whose analytic damping ratio and
    natural frequency are available from the companion [*_theory]
    functions, so the stability tool's estimates can be checked exactly. *)

val rc_lowpass : ?r:float -> ?c:float -> unit -> Circuit.Netlist.t
(** Single-pole RC driven by an AC voltage source; output net ["out"]. *)

val rc_lowpass_pole : ?r:float -> ?c:float -> unit -> float
(** Its pole frequency in Hz. *)

val parallel_rlc : ?r:float -> ?l:float -> ?c:float -> unit -> Circuit.Netlist.t
(** Parallel RLC tank hanging on net ["n"] — the canonical second-order
    driving-point fixture for the stability plot. *)

val parallel_rlc_theory : ?r:float -> ?l:float -> ?c:float -> unit -> float * float
(** [(fn, zeta)]: fn = 1/(2 pi sqrt(LC)), zeta = sqrt(L/C)/(2R). *)

val series_rlc_step : ?r:float -> ?l:float -> ?c:float -> unit -> Circuit.Netlist.t
(** Series RLC with a step source, output across the capacitor (net
    ["b"]) — the canonical second-order step-response fixture. *)

val series_rlc_theory : ?r:float -> ?l:float -> ?c:float -> unit -> float * float
(** [(fn, zeta)]: zeta = (R/2) sqrt(C/L). *)

val notch_with_zero :
  ?rser:float -> ?l:float -> ?c:float -> ?rload:float -> unit ->
  Circuit.Netlist.t
(** A series-LC branch shunting net ["out"]: its transfer function has a
    lightly damped complex {e zero} pair at the LC resonance — the fixture
    for positive stability-plot peaks. *)

val notch_zero_theory :
  ?rser:float -> ?l:float -> ?c:float -> unit -> float * float
(** [(fz, zeta_z)] of the complex zero pair: zeta_z = (rser/2) sqrt(C/L). *)

val sallen_key_lowpass :
  ?r:float -> ?c:float -> ?q:float -> unit -> Circuit.Netlist.t
(** Equal-RC Sallen-Key low-pass built around an ideal VCVS amplifier of
    gain [k = 3 - 1/q]; input ["in"], output ["out"]. A closed-loop active
    filter whose Q is set by the local feedback — at [q] above 0.5 the
    stability plot shows the complex pair at fn = 1/(2 pi RC). *)

val sallen_key_theory : ?r:float -> ?c:float -> ?q:float -> unit -> float * float
(** [(fn, zeta)] with zeta = 1/(2q). *)
