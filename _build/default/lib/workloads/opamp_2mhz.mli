(** The "simple 2 MHz op-amp" of paper Fig 1, connected as a buffer.

    A two-stage CMOS Miller amplifier: NMOS differential pair (M1/M2) with
    PMOS mirror load (M3/M4) and NMOS tail sink (M5), PMOS common-source
    second stage (M6) with NMOS sink (M7), Miller compensation [c1] in
    series with the nulling resistor [rzero] from the output back to the
    first-stage output, and [cload] at the output. Biased either by the
    zero-TC cell of {!Bias_zero_tc} (the full Fig 1 + Fig 5 system the
    all-nodes report of Table 2 covers) or by an ideal source.

    At the default (deliberately under-compensated) values the buffer
    reproduces the paper's headline numbers: a main loop near 3 MHz with a
    stability-plot peak around -29 (zeta ~ 0.19, phase margin ~ 20 degrees,
    step overshoot ~ 50 percent). *)

type params = {
  rzero : float;   (** nulling resistor in the compensation branch *)
  c1 : float;      (** Miller capacitor *)
  cload : float;   (** output load capacitance *)
  vdd : float;     (** supply (5 V) *)
  vcm : float;     (** input common-mode (2.5 V) *)
  with_bias_cell : bool;
      (** true: bias from the zero-TC cell; false: ideal bias source *)
  bias : Bias_zero_tc.params;
  step : float;    (** transient input step amplitude (50 mV) *)
}

val default_params : params

val node_out : Circuit.Netlist.node
val node_in : Circuit.Netlist.node
val node_stage1 : Circuit.Netlist.node
(** First-stage output (inner Miller node "o1"). *)

val feedback_break : string * int
(** (device, terminal) of the feedback wire at M1's gate — the unilateral
    high-impedance point where the main loop is opened for the Fig 3
    baseline. *)

val buffer : ?params:params -> unit -> Circuit.Netlist.t
(** Unity-gain buffer. The input source carries DC [vcm], a unit AC
    magnitude, and a [step] transient pulse at t = 1 us, so the same
    netlist serves the AC, transient and stability analyses. *)
