(** Shared device model cards for the workload circuits.

    The parameters are representative of a 1990s-era precision BiCMOS
    process (the paper's circuits came from TI/Burr-Brown precision linear
    parts): junction capacitances are explicit model constants so the AC
    and transient views of every pole agree exactly (see DESIGN.md). *)

open Circuit.Netlist

let npn =
  { model_name = "QNPN"; kind = Npn;
    params =
      [ ("is", 1e-16); ("bf", 150.); ("br", 2.); ("vaf", 80.);
        ("cpi", 1e-12); ("cmu", 0.08e-12); ("ccs", 0.15e-12) ] }

let pnp =
  { model_name = "QPNP"; kind = Pnp;
    params =
      [ ("is", 4e-16); ("bf", 50.); ("br", 2.); ("vaf", 40.);
        ("cpi", 1.5e-12); ("cmu", 0.1e-12); ("ccs", 0.2e-12) ] }

let nmos =
  { model_name = "MN"; kind = Nmos;
    params =
      [ ("kp", 100e-6); ("vto", 0.8); ("lambda", 0.04); ("cox", 2.3e-3);
        ("cgso", 3e-10); ("cgdo", 3e-10); ("cbd", 20e-15); ("cbs", 20e-15) ] }

let pmos =
  { model_name = "MP"; kind = Pmos;
    params =
      [ ("kp", 40e-6); ("vto", 0.9); ("lambda", 0.06); ("cox", 2.3e-3);
        ("cgso", 3e-10); ("cgdo", 3e-10); ("cbd", 30e-15); ("cbs", 30e-15) ] }

let diode =
  { model_name = "DX"; kind = Dmodel;
    params = [ ("is", 1e-14); ("cj", 1e-12) ] }

(** Install every card; adding the same model twice is harmless. *)
let add_all c =
  List.fold_left add_model c [ npn; pnp; nmos; pmos; diode ]
