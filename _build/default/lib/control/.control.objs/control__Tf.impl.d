lib/control/tf.ml: Array Complex Cx Float Format List Numerics Poly Sweep Vec Waveform
