lib/control/tf.mli: Complex Format Numerics
