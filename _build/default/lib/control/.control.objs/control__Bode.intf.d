lib/control/bode.mli: Format Numerics Tf
