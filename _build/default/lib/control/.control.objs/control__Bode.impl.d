lib/control/bode.ml: Array Engnum Format Interp Numerics Option Tf Waveform
