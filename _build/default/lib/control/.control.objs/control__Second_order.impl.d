lib/control/second_order.ml: Float Format List
