lib/control/second_order.mli: Format
