open Numerics

type t = { num : Poly.t; den : Poly.t }

let make num den =
  if Poly.is_zero den then invalid_arg "Tf.make: zero denominator";
  { num; den }

let of_real_coeffs ~num ~den =
  make (Poly.of_real_coeffs num) (Poly.of_real_coeffs den)

let from_poles_zeros ?(gain = 1.) ~poles ~zeros () =
  make
    (Poly.from_roots ~gain:(Cx.of_float gain) zeros)
    (Poly.from_roots poles)

let second_order ~zeta ~wn =
  of_real_coeffs ~num:[| wn *. wn |]
    ~den:[| wn *. wn; 2. *. zeta *. wn; 1. |]

let one = make Poly.one Poly.one
let constant k = make (Poly.of_real_coeffs [| k |]) Poly.one
let integrator = make Poly.one Poly.s

let add a b =
  make
    (Poly.add (Poly.mul a.num b.den) (Poly.mul b.num a.den))
    (Poly.mul a.den b.den)

let mul a b = make (Poly.mul a.num b.num) (Poly.mul a.den b.den)

let div a b =
  if Poly.is_zero b.num then invalid_arg "Tf.div: zero numerator divisor";
  make (Poly.mul a.num b.den) (Poly.mul a.den b.num)

let scale k a = make (Poly.scale (Cx.of_float k) a.num) a.den

let feedback ?(h = one) g =
  (* g / (1 + g h) over a common denominator. *)
  let gh_num = Poly.mul g.num h.num in
  let gh_den = Poly.mul g.den h.den in
  make (Poly.mul g.num h.den) (Poly.add gh_den gh_num)

let eval tf s = Cx.( /: ) (Poly.eval tf.num s) (Poly.eval tf.den s)
let response tf f = eval tf (Cx.j_omega (2. *. Float.pi *. f))

let freq_response tf sweep =
  let freqs = Sweep.points sweep in
  Waveform.Freq.make freqs (Array.map (response tf) freqs)

let poles tf = Poly.roots tf.den
let zeros tf = if Poly.degree tf.num < 1 then [] else Poly.roots tf.num
let dc_gain tf = eval tf Cx.zero

let is_stable tf = List.for_all (fun p -> p.Complex.re < 0.) (poles tf)

let dominant_complex_pole tf =
  poles tf
  |> List.filter (fun p -> Float.abs p.Complex.im > 1e-9 *. Cx.mag p)
  |> List.map (fun p ->
      let wn = Cx.mag p in
      (wn, -.p.Complex.re /. wn))
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> function
  | [] -> None
  | (wn, zeta) :: _ -> Some (wn, zeta)

(* Residue of num/den at a simple pole p: num(p) / den'(p). *)
let residue num den p =
  Cx.( /: ) (Poly.eval num p) (Poly.eval (Poly.derivative den) p)

let step_response_samples tf ~tstop ~n =
  if n < 2 then invalid_arg "Tf.step_response_samples: n >= 2";
  (* Y(s) = tf(s)/s; perturb near-coincident poles so all are simple. *)
  let den = Poly.mul tf.den Poly.s in
  let raw_poles = Poly.roots den in
  let poles =
    let rec dedup acc = function
      | [] -> List.rev acc
      | p :: rest ->
        let bump =
          if List.exists (fun q -> Cx.mag (Complex.sub p q) <
                                    1e-6 *. Float.max 1. (Cx.mag p)) acc
          then Cx.( +: ) p (Cx.make (1e-6 *. Float.max 1. (Cx.mag p)) 0.)
          else p
        in
        dedup (bump :: acc) rest
    in
    dedup [] raw_poles
  in
  let den' = Poly.from_roots ~gain:(Poly.coeffs den).(Poly.degree den) poles in
  let residues = List.map (fun p -> (p, residue tf.num den' p)) poles in
  let times = Vec.linspace 0. tstop n in
  let y =
    Array.map
      (fun t ->
        List.fold_left
          (fun acc (p, r) ->
            let e = Complex.exp (Cx.scale t p) in
            acc +. (Cx.( *: ) r e).Complex.re)
          0. residues)
      times
  in
  Waveform.Real.make times y

let pp ppf tf =
  Format.fprintf ppf "(%a) / (%a)" Poly.pp tf.num Poly.pp tf.den
