(** Bode data and margins for rational transfer functions.

    The circuit-level equivalent for measured responses lives in
    {!Engine.Measure}; this module provides the same quantities for exact
    {!Tf} models so the two can be cross-checked. *)

type point = { freq : float; mag_db : float; phase_deg : float }

val points : Tf.t -> Numerics.Sweep.t -> point list

type margins = {
  unity_freq : float option;
  phase_margin_deg : float option;
  phase_180_freq : float option;
  gain_margin_db : float option;
}

val margins : Tf.t -> Numerics.Sweep.t -> margins
(** Margins of a loop-gain transfer function over the given sweep, with the
    same conventions as [Engine.Measure.margins]. *)

val pp_point : Format.formatter -> point -> unit
