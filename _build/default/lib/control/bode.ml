open Numerics

type point = { freq : float; mag_db : float; phase_deg : float }

let points tf sweep =
  let w = Tf.freq_response tf sweep in
  let db = Waveform.Freq.db w in
  let ph = Waveform.Freq.phase_deg w in
  Array.to_list
    (Array.mapi
       (fun k f -> { freq = f; mag_db = db.(k); phase_deg = ph.(k) })
       w.Waveform.Freq.freqs)

type margins = {
  unity_freq : float option;
  phase_margin_deg : float option;
  phase_180_freq : float option;
  gain_margin_db : float option;
}

let margins tf sweep =
  let w = Tf.freq_response tf sweep in
  let db = Waveform.Freq.db w in
  let ph = Waveform.Freq.phase_deg w in
  let f = w.Waveform.Freq.freqs in
  let unity_freq = Interp.first_crossing ~x:f ~y:db 0. in
  let phase_margin_deg =
    Option.map (fun fu -> 180. +. Interp.semilogx ~x:f ~y:ph fu) unity_freq
  in
  let phase_180_freq = Interp.first_crossing ~x:f ~y:ph (-180.) in
  let gain_margin_db =
    Option.map (fun f180 -> -.Interp.semilogx ~x:f ~y:db f180) phase_180_freq
  in
  { unity_freq; phase_margin_deg; phase_180_freq; gain_margin_db }

let pp_point ppf p =
  Format.fprintf ppf "%12s Hz  %8.2f dB  %8.2f deg"
    (Engnum.format p.freq) p.mag_db p.phase_deg
