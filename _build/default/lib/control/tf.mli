(** Rational transfer functions in the Laplace variable s.

    Used to cross-validate the circuit-level stability analysis against
    exact pole/zero mathematics. *)

type t = { num : Numerics.Poly.t; den : Numerics.Poly.t }

val make : Numerics.Poly.t -> Numerics.Poly.t -> t
(** Raises [Invalid_argument] if the denominator is zero. *)

val of_real_coeffs : num:float array -> den:float array -> t
(** Ascending powers of s. *)

val from_poles_zeros :
  ?gain:float -> poles:Complex.t list -> zeros:Complex.t list -> unit -> t

val second_order : zeta:float -> wn:float -> t
(** The canonical system wn^2 / (s^2 + 2 zeta wn s + wn^2) (paper eq 1.1
    denormalised). *)

val one : t
val constant : float -> t
val integrator : t  (** 1/s *)

val add : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val scale : float -> t -> t

val feedback : ?h:t -> t -> t
(** [feedback g ~h] is the closed loop g / (1 + g h); [h] defaults to
    unity. *)

val eval : t -> Complex.t -> Complex.t
val response : t -> float -> Complex.t
(** [response tf f]: value at s = j 2 pi f. *)

val freq_response : t -> Numerics.Sweep.t -> Numerics.Waveform.Freq.t

val poles : t -> Complex.t list
val zeros : t -> Complex.t list
val dc_gain : t -> Complex.t
val is_stable : t -> bool
(** All poles strictly in the left half plane. *)

val dominant_complex_pole : t -> (float * float) option
(** [(wn, zeta)] of the complex-pole pair with the lowest natural frequency,
    if any — the quantity the paper's stability plot extracts per loop. *)

val step_response_samples : t -> tstop:float -> n:int -> Numerics.Waveform.Real.t
(** Unit-step response by partial fractions over the poles of [t/s]
    (simple poles only; repeated poles are perturbed by 1 ppm first). *)

val pp : Format.formatter -> t -> unit
