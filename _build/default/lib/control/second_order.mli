(** Second-order system theory: every relation of the paper's Table 1.

    The canonical unity-gain second-order transfer function (paper eq 1.1)
    with damping ratio [zeta] and natural frequency [wn] (normalised to 1
    unless stated):
    {v T(s) = 1 / (s^2 + 2 zeta s + 1) v}

    The paper's "performance index" is the value of the stability plot at
    the natural frequency (eq 1.4): P(wn) = -1/zeta^2. *)

val mag_response : zeta:float -> float -> float
(** [mag_response ~zeta x]: |T(jw)| at normalised frequency [x = w/wn]
    (paper eq 1.2). *)

val step_response : zeta:float -> float -> float
(** Unit-step response at normalised time [wn t], for [0 < zeta < 1]. *)

val percent_overshoot : float -> float
(** [percent_overshoot zeta] = 100 exp(-pi zeta / sqrt(1 - zeta^2));
    0 for [zeta >= 1]. *)

val zeta_of_overshoot : float -> float
(** Inverse of {!percent_overshoot} (overshoot in percent, 0 < os < 100). *)

val phase_margin_exact : float -> float
(** Exact phase margin (degrees) of the unity-feedback loop
    L(s) = wn^2 / (s (s + 2 zeta wn)) whose closed loop is the canonical
    system: PM = atan(2 zeta / sqrt(sqrt(1 + 4 zeta^4) - 2 zeta^2)). *)

val phase_margin_rule : float -> float
(** The Dorf rule of thumb used by the paper's Table 1: PM ~ 100 zeta,
    valid for zeta <= 0.7. *)

val zeta_of_phase_margin : float -> float
(** Inverse of {!phase_margin_exact} by bisection (PM in (0, 90)). *)

val max_magnitude : float -> float option
(** Resonant peak Mp = 1/(2 zeta sqrt(1-zeta^2)) for zeta < 1/sqrt(2);
    [None] when the response has no peak. *)

val resonant_frequency : float -> float option
(** wr/wn = sqrt(1 - 2 zeta^2) for zeta < 1/sqrt(2). *)

val damped_frequency : float -> float option
(** wd/wn = sqrt(1 - zeta^2) for zeta < 1. *)

val performance_index : float -> float
(** Paper eq 1.4: P(wn) = -1 / zeta^2. *)

val zeta_of_performance_index : float -> float
(** Inverse of {!performance_index}; requires a negative index. *)

(** One row of the paper's Table 1. *)
type table1_row = {
  zeta : float;
  overshoot_pct : float option;   (** None printed as "-" *)
  phase_margin_deg : float option;
  max_magnitude : float option;
  perf_index : float;             (** neg_infinity at zeta = 0 *)
}

val table1 : unit -> table1_row list
(** The eleven rows of Table 1 (zeta = 1.0 down to 0.0), computed from the
    closed forms above with the paper's validity cut-offs (phase margin and
    Mp columns are blank for zeta >= 0.8, overshoot blank only where the
    system cannot overshoot). *)

val pp_table1 : Format.formatter -> table1_row list -> unit

val estimate_from_peak : float -> (float * float * float) option
(** [estimate_from_peak p]: given a (negative) stability-plot peak value,
    return [(zeta, phase margin deg, overshoot pct)] — the chain the tool
    applies to every detected loop. [None] for non-negative peaks. *)
