let mag_response ~zeta x =
  1. /. sqrt ((((1. -. (x *. x)) ** 2.) +. ((2. *. zeta *. x) ** 2.)))

let step_response ~zeta t =
  if zeta <= 0. || zeta >= 1. then
    invalid_arg "Second_order.step_response: 0 < zeta < 1";
  let wd = sqrt (1. -. (zeta *. zeta)) in
  let phi = acos zeta in
  1. -. (exp (-.zeta *. t) /. wd *. sin ((wd *. t) +. phi))

let percent_overshoot zeta =
  if zeta >= 1. then 0.
  else if zeta <= 0. then 100.
  else 100. *. exp (-.Float.pi *. zeta /. sqrt (1. -. (zeta *. zeta)))

let zeta_of_overshoot os =
  if os <= 0. || os >= 100. then
    invalid_arg "Second_order.zeta_of_overshoot: 0 < os < 100";
  let l = log (os /. 100.) in
  (* os/100 = exp(-pi z / sqrt(1-z^2))  =>  z = |l| / sqrt(pi^2 + l^2). *)
  Float.abs l /. sqrt ((Float.pi *. Float.pi) +. (l *. l))

let phase_margin_exact zeta =
  if zeta <= 0. then 0.
  else begin
    let z2 = zeta *. zeta in
    let inner = sqrt (1. +. (4. *. z2 *. z2)) -. (2. *. z2) in
    atan (2. *. zeta /. sqrt inner) *. 180. /. Float.pi
  end

let phase_margin_rule zeta = 100. *. zeta

let zeta_of_phase_margin pm =
  if pm <= 0. || pm >= 90. then
    invalid_arg "Second_order.zeta_of_phase_margin: 0 < pm < 90";
  let rec bisect lo hi n =
    if n = 0 then (lo +. hi) /. 2.
    else begin
      let mid = (lo +. hi) /. 2. in
      if phase_margin_exact mid < pm then bisect mid hi (n - 1)
      else bisect lo mid (n - 1)
    end
  in
  (* phase_margin_exact is monotone increasing in zeta. *)
  bisect 1e-6 10. 80

let max_magnitude zeta =
  if zeta <= 0. || zeta >= 1. /. sqrt 2. then None
  else Some (1. /. (2. *. zeta *. sqrt (1. -. (zeta *. zeta))))

let resonant_frequency zeta =
  if zeta <= 0. || zeta >= 1. /. sqrt 2. then None
  else Some (sqrt (1. -. (2. *. zeta *. zeta)))

let damped_frequency zeta =
  if zeta <= 0. || zeta >= 1. then None
  else Some (sqrt (1. -. (zeta *. zeta)))

let performance_index zeta =
  if zeta = 0. then Float.neg_infinity else -1. /. (zeta *. zeta)

let zeta_of_performance_index p =
  if p >= 0. then
    invalid_arg "Second_order.zeta_of_performance_index: peak must be negative";
  1. /. sqrt (-.p)

type table1_row = {
  zeta : float;
  overshoot_pct : float option;
  phase_margin_deg : float option;
  max_magnitude : float option;
  perf_index : float;
}

let table1 () =
  [ 1.0; 0.9; 0.8; 0.7; 0.6; 0.5; 0.4; 0.3; 0.2; 0.1; 0.0 ]
  |> List.map (fun zeta ->
      (* The paper blanks the frequency-domain columns above zeta = 0.7
         (no resonant peak, PM rule out of range). *)
      let in_range = zeta >= 0.05 && zeta <= 0.75 in
      { zeta;
        overshoot_pct =
          (if zeta >= 1. then Some 0.
           else if zeta = 0. then Some 100.
           else Some (percent_overshoot zeta));
        phase_margin_deg =
          (if in_range then Some (phase_margin_rule zeta) else None);
        max_magnitude = (if in_range then max_magnitude zeta else None);
        perf_index = performance_index zeta })

let pp_table1 ppf rows =
  let cell ppf = function
    | Some v -> Format.fprintf ppf "%8.2f" v
    | None -> Format.fprintf ppf "%8s" "-"
  in
  Format.fprintf ppf
    "  zeta  overshoot[%%]   PM[deg]      Mp    perf.index@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %4.1f  %a  %a  %a  " r.zeta cell r.overshoot_pct
        cell r.phase_margin_deg cell r.max_magnitude;
      if r.perf_index = Float.neg_infinity then
        Format.fprintf ppf "%10s@." "-inf"
      else Format.fprintf ppf "%10.1f@." r.perf_index)
    rows

let estimate_from_peak p =
  if p >= 0. then None
  else begin
    let zeta = zeta_of_performance_index p in
    Some (zeta, phase_margin_exact zeta, percent_overshoot zeta)
  end
