(** Loop trajectories across a parameter sweep.

    The natural follow-up to {!Sensitivity}: instead of the local slope,
    sweep a component (or any circuit-building parameter) and track where
    the loop's natural frequency and damping go — the data a designer plots
    when sizing a compensation network. *)

type point = {
  param : float;          (** the swept value *)
  freq : float;           (** loop natural frequency at this value *)
  peak : float;           (** stability-plot peak (performance index) *)
  zeta : float option;
  phase_margin_deg : float option;
}

val across :
  ?options:Analysis.options -> build:(float -> Circuit.Netlist.t) ->
  values:float array -> node:Circuit.Netlist.node -> unit ->
  (float * point option) list
(** Evaluate the dominant peak at [node] for each built circuit. [None]
    entries mean the loop had no complex pair at that value (fully
    damped). *)

val component :
  ?options:Analysis.options -> Circuit.Netlist.t -> device:string ->
  values:float array -> node:Circuit.Netlist.node ->
  (float * point option) list
(** Sweep a passive component's value (R/C/L). Raises [Invalid_argument]
    for other devices. *)

val critical_value :
  (float * point option) list -> zeta_target:float -> float option
(** Smallest swept value whose damping reaches [zeta_target] (linear
    interpolation between bracketing sweep points); [None] when the target
    is never reached. Points without a complex pair count as
    fully damped (zeta = 1). *)

val pp : Format.formatter -> (float * point option) list -> unit
