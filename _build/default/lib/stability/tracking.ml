type point = {
  param : float;
  freq : float;
  peak : float;
  zeta : float option;
  phase_margin_deg : float option;
}

let across ?options ~build ~values ~node () =
  Array.to_list values
  |> List.map (fun v ->
      let circ = build v in
      match (Analysis.single_node ?options circ node).Analysis.dominant with
      | Some d ->
        ( v,
          Some
            { param = v;
              freq = d.Peaks.freq;
              peak = d.Peaks.value;
              zeta = d.Peaks.zeta;
              phase_margin_deg = d.Peaks.phase_margin_deg } )
      | None -> (v, None))

let component ?options circ ~device ~values ~node =
  let d0 =
    match Circuit.Netlist.find_device circ device with
    | Some d -> d
    | None ->
      invalid_arg (Printf.sprintf "Tracking.component: no device %S" device)
  in
  let with_value v =
    let d =
      match d0 with
      | Circuit.Netlist.Resistor x -> Circuit.Netlist.Resistor { x with r = v }
      | Circuit.Netlist.Capacitor x ->
        Circuit.Netlist.Capacitor { x with c = v }
      | Circuit.Netlist.Inductor x -> Circuit.Netlist.Inductor { x with l = v }
      | _ ->
        invalid_arg
          (Printf.sprintf "Tracking.component: %S is not a passive" device)
    in
    Circuit.Netlist.replace_device circ d
  in
  across ?options ~build:with_value ~values ~node ()

let critical_value traj ~zeta_target =
  let zeta_of = function
    | Some p -> Option.value ~default:1. p.zeta
    | None -> 1.
  in
  let rec scan = function
    | (v1, p1) :: ((v2, p2) :: _ as rest) ->
      let z1 = zeta_of p1 and z2 = zeta_of p2 in
      if (z1 -. zeta_target) *. (z2 -. zeta_target) <= 0. then begin
        if z1 = z2 then Some v1
        else Some (v1 +. ((v2 -. v1) *. (zeta_target -. z1) /. (z2 -. z1)))
      end
      else scan rest
    | _ -> None
  in
  (* An exact hit on the first point. *)
  match traj with
  | (v1, p1) :: _ when zeta_of p1 = zeta_target -> Some v1
  | _ -> scan traj

let pp ppf traj =
  Format.fprintf ppf "%12s %12s %10s %8s %8s@." "value" "fn [Hz]" "peak"
    "zeta" "PM [deg]";
  List.iter
    (fun (v, p) ->
      match p with
      | Some p ->
        Format.fprintf ppf "%12s %12s %10.2f %8s %8s@."
          (Numerics.Engnum.format v)
          (Numerics.Engnum.format p.freq)
          p.peak
          (match p.zeta with
           | Some z -> Printf.sprintf "%.3f" z
           | None -> "-")
          (match p.phase_margin_deg with
           | Some pm -> Printf.sprintf "%.1f" pm
           | None -> "-")
      | None ->
        Format.fprintf ppf "%12s %12s %10s %8s %8s@."
          (Numerics.Engnum.format v) "-" "damped" "-" "-")
    traj
