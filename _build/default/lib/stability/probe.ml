open Numerics

type t = {
  mna : Engine.Mna.t;
  op : Engine.Dcop.t;
}

let prepare ?dc_options circ =
  let mna = Engine.Mna.compile circ in
  let op = Engine.Dcop.solve ?options:dc_options mna in
  { mna; op }

(* Unit current pushed into node index [k]: rhs = +1 at k (the KCL
   convention of the engine counts injected current positive). *)
let excitation size k =
  let b = Array.make size Cx.zero in
  b.(k) <- Cx.one;
  b

(* Above this unknown count the sparse backend factors the AC system
   faster than dense LU (circuit matrices carry only a few entries per
   row); below it the dense path's simplicity wins. *)
let sparse_threshold = 120

let response_many ?(gmin = 1e-12) ?backend ?(parallel = false) t ~sweep
    nodes =
  let size = t.mna.Engine.Mna.size in
  let backend =
    match backend with
    | Some b -> b
    | None -> if size > sparse_threshold then `Sparse else `Dense
  in
  let indexed =
    List.map
      (fun n ->
        let i = Engine.Mna.node_index t.mna n in
        if i < 0 then
          invalid_arg "Probe.response_many: cannot probe the ground net";
        (n, i))
      nodes
  in
  let freqs = Sweep.points sweep in
  let per_node = List.map (fun (n, i) -> (n, i, Array.make
                                            (Array.length freqs) Cx.zero))
                   indexed in
  let prims = Engine.Linearize.of_op t.op in
  let run_point fk f =
    let omega = 2. *. Float.pi *. f in
    let solve =
      match backend with
      | `Dense ->
        let lu = Engine.Ac.factor_at ~gmin ~op:t.op ~omega t.mna in
        fun b -> Cmat.lu_solve lu b
      | `Sparse ->
        (* The stamps write into a dense matrix; harvesting its nonzeros
           into triplets costs one O(size^2) scan, negligible next to
           the factorisation it replaces. *)
        let a = Cmat.create size size in
        Engine.Ac.matrix_at t.mna prims ~gmin ~w:omega a;
        let triplets = ref [] in
        for i = 0 to size - 1 do
          for j = 0 to size - 1 do
            let v = Cmat.get a i j in
            if Cx.mag v <> 0. then triplets := (i, j, v) :: !triplets
          done
        done;
        let sp = Scmat.of_triplets ~rows:size ~cols:size !triplets in
        let lu = Scmat.lu_factor sp in
        fun b -> Scmat.lu_solve lu b
    in
    List.iter
      (fun (_, i, out) ->
        let x = solve (excitation size i) in
        out.(fk) <- x.(i))
      per_node
  in
  if not parallel then Array.iteri run_point freqs
  else begin
    (* Frequency points are independent; spread them over domains. Each
       domain writes disjoint columns of the (pre-allocated) result
       arrays, so no synchronisation is needed. *)
    let workers = Int.max 1 (Domain.recommended_domain_count () - 1) in
    let domains =
      List.init workers (fun w ->
          Domain.spawn (fun () ->
              let fk = ref w in
              while !fk < Array.length freqs do
                run_point !fk freqs.(!fk);
                fk := !fk + workers
              done))
    in
    List.iter Domain.join domains
  end;
  List.map (fun (n, _, h) -> (n, Waveform.Freq.make freqs h)) per_node

let response ?gmin t ~sweep node =
  match response_many ?gmin t ~sweep [ node ] with
  | [ (_, w) ] -> w
  | _ -> assert false

let response_via_netlist ?gmin ?dc_options circ ~sweep node =
  let probed = Circuit.Transform.with_ac_current_probe circ node in
  let ac = Engine.Ac.run ?dc_options ?gmin ~sweep probed in
  Engine.Ac.v ac node
