let lookup results node =
  List.find_opt
    (fun (r : Analysis.node_result) -> String.equal r.node node)
    results

let annotation_of results node =
  match lookup results node with
  | None -> None
  | Some { dominant = None; _ } -> Some "no peak"
  | Some { dominant = Some d; _ } ->
    Some
      (Printf.sprintf "peak %.2f @ %sHz%s" (Float.abs d.Peaks.value)
         (Numerics.Engnum.format d.Peaks.freq)
         (match d.Peaks.phase_margin_deg with
          | Some pm -> Printf.sprintf ", PM %.0f deg" pm
          | None -> ""))

let netlist ppf circ results =
  Format.fprintf ppf "* %s -- annotated with stability analysis results@."
    (Circuit.Netlist.title circ);
  List.iter
    (fun d ->
      Format.fprintf ppf "%a@." Circuit.Netlist.pp_device d;
      let nodes =
        List.filter
          (fun n -> not (Circuit.Netlist.is_ground n))
          (Circuit.Netlist.device_nodes d)
        |> List.sort_uniq compare
      in
      List.iter
        (fun n ->
          match annotation_of results n with
          | Some a -> Format.fprintf ppf "*   %s: %s@." n a
          | None -> ())
        nodes)
    (Circuit.Netlist.devices circ);
  Format.fprintf ppf "*@.* per-net summary:@.";
  List.iter
    (fun (r : Analysis.node_result) ->
      match annotation_of results r.node with
      | Some a -> Format.fprintf ppf "*   %-16s %s@." r.node a
      | None -> ())
    results

let netlist_string circ results =
  Format.asprintf "%a" (fun ppf -> netlist ppf circ) results
