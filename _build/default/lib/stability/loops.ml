type member = {
  node : Circuit.Netlist.node;
  peak : Peaks.peak;
}

type loop = {
  natural_freq : float;
  worst : member;
  members : member list;
}

let cluster ?(rel_gap = 0.25) (results : Analysis.node_result list) =
  let entries =
    List.filter_map
      (fun (r : Analysis.node_result) ->
        Option.map (fun pk -> { node = r.node; peak = pk }) r.dominant)
      results
    |> List.sort (fun a b -> compare a.peak.Peaks.freq b.peak.Peaks.freq)
  in
  let close a b = b.peak.Peaks.freq /. a.peak.Peaks.freq <= 1. +. rel_gap in
  let rec group acc current = function
    | [] -> List.rev (match current with [] -> acc | c -> List.rev c :: acc)
    | e :: rest ->
      (match current with
       | [] -> group acc [ e ] rest
       | last :: _ when close last e -> group acc (e :: current) rest
       | _ -> group (List.rev current :: acc) [ e ] rest)
  in
  let groups = group [] [] entries in
  groups
  |> List.map (fun members ->
      let by_depth =
        List.sort
          (fun a b -> compare a.peak.Peaks.value b.peak.Peaks.value)
          members
      in
      match by_depth with
      | [] -> assert false
      | worst :: _ ->
        { natural_freq = worst.peak.Peaks.freq; worst; members = by_depth })
  |> List.sort (fun a b -> compare a.natural_freq b.natural_freq)

let estimated_phase_margin l = l.worst.peak.Peaks.phase_margin_deg

let pp ppf l =
  Format.fprintf ppf "Loop at %sHz (%d nodes, deepest peak %.2f at %s)"
    (Numerics.Engnum.format l.natural_freq)
    (List.length l.members) l.worst.peak.Peaks.value l.worst.node;
  match estimated_phase_margin l with
  | Some pm -> Format.fprintf ppf ", est. PM %.1f deg" pm
  | None -> ()
