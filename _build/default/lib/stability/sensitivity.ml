type entry = {
  device : string;
  nominal : float;
  zeta_sensitivity : float;
  freq_sensitivity : float;
}

let passive_value = function
  | Circuit.Netlist.Resistor { r; _ } -> Some r
  | Circuit.Netlist.Capacitor { c; _ } -> Some c
  | Circuit.Netlist.Inductor { l; _ } -> Some l
  | _ -> None

let with_value d v =
  match d with
  | Circuit.Netlist.Resistor x -> Circuit.Netlist.Resistor { x with r = v }
  | Circuit.Netlist.Capacitor x -> Circuit.Netlist.Capacitor { x with c = v }
  | Circuit.Netlist.Inductor x -> Circuit.Netlist.Inductor { x with l = v }
  | other -> other

let dominant_peak ?options circ node =
  match (Analysis.single_node ?options circ node).Analysis.dominant with
  | Some d ->
    (match d.Peaks.zeta with
     | Some z -> Some (z, d.Peaks.freq)
     | None -> None)
  | None -> None

let of_loop ?options ?(rel_step = 0.05) circ ~node =
  let zeta0, freq0 =
    match dominant_peak ?options circ node with
    | Some x -> x
    | None ->
      failwith
        (Printf.sprintf
           "Sensitivity.of_loop: no dominant complex pole at %S" node)
  in
  Circuit.Netlist.devices circ
  |> List.filter_map (fun d ->
      match passive_value d with
      | None -> None
      | Some nominal ->
        let perturbed sign =
          let v = nominal *. (1. +. (sign *. rel_step)) in
          let circ' = Circuit.Netlist.replace_device circ (with_value d v) in
          dominant_peak ?options circ' node
        in
        (match (perturbed 1., perturbed (-1.)) with
         | Some (z_hi, f_hi), Some (z_lo, f_lo) ->
           Some
             { device = Circuit.Netlist.device_name d;
               nominal;
               zeta_sensitivity =
                 (z_hi -. z_lo) /. (2. *. rel_step) /. zeta0;
               freq_sensitivity =
                 (f_hi -. f_lo) /. (2. *. rel_step) /. freq0 }
         | _ -> None))
  |> List.sort (fun a b ->
      compare
        (Float.abs b.zeta_sensitivity)
        (Float.abs a.zeta_sensitivity))

let pp ppf entries =
  Format.fprintf ppf "%-12s %12s %14s %14s@." "component" "nominal"
    "S(zeta)" "S(fn)";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-12s %12s %+14.3f %+14.3f@." e.device
        (Numerics.Engnum.format e.nominal)
        e.zeta_sensitivity e.freq_sensitivity)
    entries
