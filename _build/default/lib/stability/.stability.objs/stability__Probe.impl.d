lib/stability/probe.ml: Array Circuit Cmat Cx Domain Engine Float Int List Numerics Scmat Sweep Waveform
