lib/stability/sensitivity.mli: Analysis Circuit Format
