lib/stability/stability_plot.mli: Format Numerics
