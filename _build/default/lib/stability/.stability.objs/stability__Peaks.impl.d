lib/stability/peaks.ml: Control Engnum Float Format List Numerics Option Peak Stability_plot String
