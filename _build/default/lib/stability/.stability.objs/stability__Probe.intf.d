lib/stability/probe.mli: Circuit Engine Numerics
