lib/stability/annotate.ml: Analysis Circuit Float Format List Numerics Peaks Printf String
