lib/stability/loops.mli: Analysis Circuit Format Peaks
