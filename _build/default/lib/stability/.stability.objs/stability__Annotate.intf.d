lib/stability/annotate.mli: Analysis Circuit Format
