lib/stability/analysis.ml: Array Circuit Complex Engine Float List Numerics Peaks Printf Probe Stability_plot Sweep Waveform
