lib/stability/peaks.mli: Format Stability_plot
