lib/stability/report.mli: Analysis Format
