lib/stability/tracking.mli: Analysis Circuit Format
