lib/stability/loops.ml: Analysis Circuit Format List Numerics Option Peaks
