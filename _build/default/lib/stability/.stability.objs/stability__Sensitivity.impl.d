lib/stability/sensitivity.ml: Analysis Circuit Float Format List Numerics Peaks Printf
