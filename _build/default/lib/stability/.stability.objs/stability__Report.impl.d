lib/stability/report.ml: Analysis Control Float Format List Loops Numerics Option Peaks Printf String
