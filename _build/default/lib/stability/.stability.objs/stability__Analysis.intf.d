lib/stability/analysis.mli: Circuit Engine Numerics Peaks Probe Stability_plot
