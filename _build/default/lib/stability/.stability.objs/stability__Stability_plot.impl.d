lib/stability/stability_plot.ml: Array Deriv Engnum Format Interp Numerics Peak Waveform
