lib/stability/tracking.ml: Analysis Array Circuit Format List Numerics Option Peaks Printf
