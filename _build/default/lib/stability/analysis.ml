open Numerics

type options = {
  sweep : Numerics.Sweep.t;
  refine : bool;
  refine_ratio : float;
  refine_per_decade : int;
  min_peak : float;
  dc_options : Engine.Dcop.options;
  parallel : bool;
}

let default_options =
  { sweep = Sweep.decade 1e3 1e9 30;
    refine = true;
    refine_ratio = 2.0;
    refine_per_decade = 600;
    min_peak = 0.2;
    dc_options = Engine.Dcop.default_options;
    parallel = false }

type node_result = {
  node : Circuit.Netlist.node;
  plot : Stability_plot.t;
  peaks : Peaks.peak list;
  dominant : Peaks.peak option;
}

let sweep_bounds sweep =
  let pts = Sweep.points sweep in
  (pts.(0), pts.(Array.length pts - 1))

(* Nets held by ideal sources have an essentially zero probe response
   (the injected current sinks entirely into the source): such nets are
   unobservable and reported as dead. On live nets, samples many orders of
   magnitude below the response maximum (numerical residue of a pinned
   frequency range, or a notch deeper than the solver resolves) are
   clamped so the logarithmic differentiation stays finite; the clamp sits
   far below anything a real pole/zero produces. *)
let live_window (w : Waveform.Freq.t) =
  let mag = Waveform.Freq.mag w in
  if Array.exists (fun m -> not (Float.is_finite m)) mag then None
  else begin
    let max_mag = Array.fold_left Float.max 0. mag in
    (* A driving-point impedance below a nano-ohm is not a physical node
       response; it is LU solver residue on a net pinned by an ideal
       source. *)
    if max_mag < 1e-9 then None
    else begin
      let floor = max_mag *. 1e-14 in
      let h =
        Array.mapi
          (fun k z -> if mag.(k) < floor then { Complex.re = floor; im = 0. } else z)
          w.Waveform.Freq.h
      in
      Some (Waveform.Freq.make w.Waveform.Freq.freqs h)
    end
  end

(* Re-probe a zoom window around a coarse peak and return the refined
   peak if the fine grid confirms one of the same kind nearby. *)
let refine_peak opts probe node (coarse : Peaks.peak) =
  let fmin, fmax = sweep_bounds opts.sweep in
  let center = coarse.Peaks.freq in
  let lo = Float.max fmin (center /. opts.refine_ratio) in
  let hi = Float.min fmax (center *. opts.refine_ratio) in
  if hi <= lo *. 1.01 then coarse
  else begin
    let zoom = Sweep.decade lo hi opts.refine_per_decade in
    let w = Probe.response probe ~sweep:zoom node in
    match live_window w with
    | None -> coarse
    | Some w ->
    let plot = Stability_plot.of_response w in
    let candidates =
      Peaks.analyze ~min_magnitude:(opts.min_peak /. 2.) plot
      |> List.filter (fun (p : Peaks.peak) -> p.kind = coarse.kind)
    in
    (* Pick the candidate closest to the coarse estimate in log frequency;
       edge hits in the zoom window mean the coarse peak was spurious
       curvature, in which case keep the coarse data. *)
    candidates
    |> List.filter (fun (p : Peaks.peak) ->
        not (List.mem Peaks.End_of_range p.notices))
    |> List.sort (fun (a : Peaks.peak) b ->
        compare
          (Float.abs (log (a.freq /. center)))
          (Float.abs (log (b.freq /. center))))
    |> function
    | best :: _ ->
      (* Keep coarse-plot notices that still apply (end-of-range refers to
         the full sweep, not the zoom window). *)
      let notices =
        (if List.mem Peaks.End_of_range coarse.notices then
           [ Peaks.End_of_range ]
         else [])
        @ List.filter (fun n -> n <> Peaks.End_of_range) best.Peaks.notices
      in
      { best with notices }
    | [] -> coarse
  end

let analyze_node_opt opts probe node response =
  match live_window response with
  | None -> None
  | Some response ->
    let plot = Stability_plot.of_response response in
    let coarse = Peaks.analyze ~min_magnitude:opts.min_peak plot in
    let peaks =
      if opts.refine then List.map (refine_peak opts probe node) coarse
      else coarse
    in
    Some { node; plot; peaks; dominant = Peaks.dominant peaks }

let analyze_node opts probe node response =
  match analyze_node_opt opts probe node response with
  | Some r -> r
  | None ->
    failwith
      (Printf.sprintf
         "Stability.Analysis: net %S shows no finite AC response (held by \
          an ideal source?)"
         node)

let single_node_prepared ?(options = default_options) probe node =
  let w = Probe.response probe ~sweep:options.sweep node in
  analyze_node options probe node w

let all_nodes_prepared ?(options = default_options) ?nodes probe =
  let all =
    match nodes with
    | Some ns -> ns
    | None ->
      Array.to_list (Circuit.Topology.nodes probe.Probe.mna.Engine.Mna.topo)
  in
  let responses =
    Probe.response_many ~parallel:options.parallel probe
      ~sweep:options.sweep all
  in
  (* Nets with no live response window (pinned by ideal sources) are
     skipped, as the paper's tool skips nets it cannot stimulate. *)
  List.filter_map
    (fun (node, w) -> analyze_node_opt options probe node w)
    responses

let single_node ?(options = default_options) circ node =
  let probe = Probe.prepare ~dc_options:options.dc_options circ in
  single_node_prepared ~options probe node

let all_nodes ?(options = default_options) ?nodes circ =
  let probe = Probe.prepare ~dc_options:options.dc_options circ in
  all_nodes_prepared ~options ?nodes probe
