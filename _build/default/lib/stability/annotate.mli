(** Annotation of results on the circuit (paper feature "Annotation of
    Results on circuit schematic", Fig 5).

    Without a schematic canvas the annotation targets the netlist: the
    SPICE listing is emitted with a comment block mapping every analysed
    net to its stability peak, natural frequency and estimated phase
    margin, plus per-device terminal annotations so the loop can be traced
    through the devices it crosses. *)

val netlist :
  Format.formatter -> Circuit.Netlist.t -> Analysis.node_result list -> unit

val netlist_string : Circuit.Netlist.t -> Analysis.node_result list -> string
