(** Loop identification: cluster the per-node stability peaks by natural
    frequency.

    Nodes that participate in the same feedback loop share (nearly) the
    same natural frequency, so the All-Nodes results cluster into the
    paper's "Loop at f" groups of Table 2. Clustering is single-linkage on
    log-frequency with a relative gap threshold. *)

type member = {
  node : Circuit.Netlist.node;
  peak : Peaks.peak;
}

type loop = {
  natural_freq : float;   (** frequency of the deepest member peak *)
  worst : member;         (** the member with the deepest peak *)
  members : member list;  (** all members, deepest first *)
}

val cluster : ?rel_gap:float -> Analysis.node_result list -> loop list
(** Build loops from each node's dominant peak. Two adjacent (in frequency)
    peaks belong to the same loop when their frequency ratio is below
    [1 + rel_gap] (default 0.25). Loops are returned sorted by ascending
    natural frequency; nodes without a complex-pole peak are dropped. *)

val estimated_phase_margin : loop -> float option
(** Exact second-order phase margin of the loop's worst member. *)

val pp : Format.formatter -> loop -> unit
