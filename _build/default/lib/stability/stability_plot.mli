(** The stability plot (paper eq 1.3).

    Given the magnitude of a node's AC response to a current-probe
    excitation, the stability function
    {v P(w) = d2 ln|T| / d (ln w)2 v}
    filters out real poles and zeros (shallow -0.5/+0.5 excursions) while
    every complex-pole pair produces a sharp negative peak of value
    -1/zeta^2 at its natural frequency (eq 1.4) and every complex-zero pair
    a positive peak. *)

type t = {
  freqs : float array;
  mag : float array;   (** |T(j 2 pi f)| — the probed response *)
  p : float array;     (** the stability function at each frequency *)
}

val of_response : Numerics.Waveform.Freq.t -> t
(** Compute the plot from a complex response (magnitudes must be positive:
    a numerically zero response anywhere raises [Invalid_argument]). *)

val of_magnitude : freqs:float array -> mag:float array -> t

val value_at : t -> float -> float
(** Log-frequency interpolation of the stability function. *)

val global_minimum : t -> float * float
(** [(frequency, value)] of the most negative point (parabolically
    refined when interior). *)

val pp : Format.formatter -> t -> unit
(** Tabular dump (frequency, |T|, P). *)
