(** Text reports in the style of the paper's Table 2: per-node stability
    peaks sorted and grouped by loop natural frequency, with special-case
    notices ("end-of-range", "min/max" types) appended per node. *)

val all_nodes :
  ?rel_gap:float -> Format.formatter -> Analysis.node_result list -> unit
(** The All-Nodes run report. Peak values print as magnitudes (the paper's
    Table 2 prints |P|; every grouped peak is a negative, complex-pole
    peak). *)

val single_node : Format.formatter -> Analysis.node_result -> unit
(** Single-node report: the peak list with damping/phase-margin/overshoot
    estimates, plus the plot extremum summary. *)

val all_nodes_string : ?rel_gap:float -> Analysis.node_result list -> string
val single_node_string : Analysis.node_result -> string
