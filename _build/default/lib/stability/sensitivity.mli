(** Component sensitivity of a loop's stability.

    Answers the designer's next question after the all-nodes report flags a
    loop: {e which component do I change}? For every passive component (and
    optionally every device geometry), the analysis perturbs the value by a
    relative step, re-runs the single-node probe, and reports the
    normalised sensitivity of the loop's damping ratio,

    {v S = (d zeta / zeta) / (d x / x) v}

    ranked by magnitude. Positive S means increasing the component damps
    the loop. Central differences are used so first-order accuracy holds
    even near damping extrema. *)

type entry = {
  device : string;
  nominal : float;          (** nominal component value *)
  zeta_sensitivity : float; (** normalised d(zeta)/d(value) *)
  freq_sensitivity : float; (** normalised d(fn)/d(value) *)
}

val of_loop :
  ?options:Analysis.options -> ?rel_step:float ->
  Circuit.Netlist.t -> node:Circuit.Netlist.node -> entry list
(** Sensitivities of the dominant peak seen from [node], over every
    resistor, capacitor and inductor of the circuit, sorted by descending
    |zeta sensitivity|. [rel_step] defaults to 0.05 (a +/-5 percent
    perturbation). Components whose perturbed circuit loses the peak are
    skipped. Raises [Failure] when the nominal circuit has no dominant
    complex pole at [node]. *)

val pp : Format.formatter -> entry list -> unit
