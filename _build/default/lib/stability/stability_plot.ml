open Numerics

type t = {
  freqs : float array;
  mag : float array;
  p : float array;
}

let of_magnitude ~freqs ~mag =
  { freqs = Array.copy freqs; mag = Array.copy mag;
    p = Deriv.stability_function ~freq:freqs ~mag }

let of_response w =
  of_magnitude ~freqs:w.Waveform.Freq.freqs ~mag:(Waveform.Freq.mag w)

let value_at t f = Interp.semilogx ~x:t.freqs ~y:t.p f

let global_minimum t =
  let pk = Peak.global_minimum ~x:t.freqs ~y:t.p in
  (pk.Peak.x, pk.Peak.y)

let pp ppf t =
  Format.fprintf ppf "%14s %14s %12s@." "freq [Hz]" "|T|" "P";
  Array.iteri
    (fun k f ->
      Format.fprintf ppf "%14s %14.6g %12.4f@." (Engnum.format f) t.mag.(k)
        t.p.(k))
    t.freqs
