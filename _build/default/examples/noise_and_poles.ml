(* Two companion views of loop stability, both cross-checking the paper's
   stability plot on the built-in op-amp:

   1. Output NOISE: the paper's section 1.2 argues that "in an unstable
      loop, inherent device noise ... can start oscillations". The output
      noise spectrum of the marginal buffer indeed peaks at exactly the
      natural frequency the stability plot reports.

   2. Exact POLES: the eigenvalues of the linearised MNA pencil are ground
      truth for every loop at once; the stability plot's per-node estimates
      must (and do) match them.

   Run with: dune exec examples/noise_and_poles.exe *)

let () =
  let circ = Workloads.Opamp_2mhz.buffer () in

  (* The stability plot's verdict. *)
  let d =
    (Stability.Analysis.single_node circ "out").Stability.Analysis.dominant
    |> Option.get
  in
  Printf.printf "stability plot:  main loop at %sHz, zeta %.3f\n"
    (Numerics.Engnum.format d.Stability.Peaks.freq)
    (Option.get d.Stability.Peaks.zeta);

  (* 1. Noise corroboration. *)
  let noise =
    Engine.Noise.run ~sweep:(Numerics.Sweep.decade 1e3 1e9 20) ~output:"out"
      circ
  in
  let kpeak = Numerics.Vec.argmax noise.Engine.Noise.total in
  Printf.printf "noise spectrum:  peaks at %sHz (%sV/rtHz)\n"
    (Numerics.Engnum.format noise.Engine.Noise.freqs.(kpeak))
    (Numerics.Engnum.format (sqrt noise.Engine.Noise.total.(kpeak)));
  Format.printf "%a"
    (Engine.Noise.pp_summary ~at_hz:d.Stability.Peaks.freq)
    noise;

  (* 2. Eigenvalue corroboration. *)
  let poles = Engine.Poles.of_circuit circ in
  Printf.printf "\nexact poles:     %d finite, %s\n" (List.length poles)
    (if Engine.Poles.is_stable poles then "all in the left half plane"
     else "UNSTABLE");
  List.iter
    (fun p -> Format.printf "  complex pair %a@." Engine.Poles.pp p)
    (Engine.Poles.complex_pairs poles);

  (* 3. Which component to change? Sensitivity ranking of the main loop. *)
  print_endline "\ncomponent sensitivities of the main loop's damping:";
  let entries =
    Stability.Sensitivity.of_loop
      ~options:
        { Stability.Analysis.default_options with
          sweep = Numerics.Sweep.decade 1e5 1e8 30 }
      circ ~node:"out"
  in
  Stability.Sensitivity.pp Format.std_formatter entries
