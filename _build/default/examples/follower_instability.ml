(* Emitter-follower local instability vs source resistance.

   A follower driven from a resistive source shows an inductive output
   impedance; against a capacitive load it rings. The paper's method
   quantifies this per node without opening anything: sweep the source
   resistance and watch the output-node stability peak deepen from
   "real-pole-like" to a genuine complex pair. Run with:

     dune exec examples/follower_instability.exe *)

let () =
  print_endline
    "NPN emitter follower, 1 mA bias, 10 pF load, swept source resistance:";
  Printf.printf "  %10s %14s %14s %8s %16s\n" "Rsource" "peak" "fn" "zeta"
    "first-order est.";
  List.iter
    (fun rsource ->
      let circ = Workloads.Follower.emitter_follower ~rsource () in
      let r = Stability.Analysis.single_node circ "out" in
      let fn_est, zeta_est =
        Workloads.Follower.ef_ringing_estimate ~rsource ()
      in
      match r.Stability.Analysis.dominant with
      | Some d ->
        Printf.printf "  %10s %14.2f %13sHz %8s   fn~%sHz zeta~%.2f\n"
          (Numerics.Engnum.format rsource)
          d.Stability.Peaks.value
          (Numerics.Engnum.format d.Stability.Peaks.freq)
          (match d.Stability.Peaks.zeta with
           | Some z -> Printf.sprintf "%.2f" z
           | None -> ">1")
          (Numerics.Engnum.format fn_est) zeta_est
      | None ->
        Printf.printf "  %10s %14s\n" (Numerics.Engnum.format rsource)
          "well damped")
    [ 100.; 1e3; 3.3e3; 10e3; 33e3; 100e3 ];
  print_endline
    "\nThe classic fixes, verified the same way (Rsource = 33k):";
  List.iter
    (fun (tag, build) ->
      let r = Stability.Analysis.single_node (build ()) "out" in
      match r.Stability.Analysis.dominant with
      | Some d ->
        Printf.printf "  %-36s peak %7.2f at %sHz\n" tag
          d.Stability.Peaks.value
          (Numerics.Engnum.format d.Stability.Peaks.freq)
      | None -> Printf.printf "  %-36s no complex pole\n" tag)
    [ ("as is", fun () -> Workloads.Follower.emitter_follower ~rsource:33e3 ());
      ("smaller load (1 pF)",
       fun () ->
         Workloads.Follower.emitter_follower ~rsource:33e3 ~cload:1e-12 ());
      ("more bias current (5 mA)",
       fun () ->
         Workloads.Follower.emitter_follower ~rsource:33e3 ~ibias:5e-3 ()) ]
