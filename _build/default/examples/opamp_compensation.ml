(* Diagnosing and fixing op-amp compensation with the stability plot — the
   paper's primary use case (section 3).

   The 2 MHz op-amp of Fig 1 ships deliberately under-compensated: at the
   nominal rzero / c1 / cload the main loop has ~20 degrees of phase
   margin. This example sweeps the compensation network and shows how the
   stability-plot peak at the output node tracks the loop's damping, then
   cross-checks the chosen fix against the traditional open-loop margins
   and the transient overshoot — the paper's three-way consistency
   argument. Run with:

     dune exec examples/opamp_compensation.exe *)

let analyse tag params =
  let circ = Workloads.Opamp_2mhz.buffer ~params () in
  let r = Stability.Analysis.single_node circ Workloads.Opamp_2mhz.node_out in
  match r.Stability.Analysis.dominant with
  | Some d ->
    let zeta = Option.value ~default:Float.nan d.Stability.Peaks.zeta in
    let pm = Option.value ~default:Float.nan d.Stability.Peaks.phase_margin_deg in
    let os = Option.value ~default:Float.nan d.Stability.Peaks.overshoot_pct in
    Printf.printf "  %-28s peak %7.1f at %8sHz  zeta %.2f  PM %5.1f deg  est. overshoot %4.0f%%\n"
      tag d.Stability.Peaks.value
      (Numerics.Engnum.format d.Stability.Peaks.freq)
      zeta pm os;
    (zeta, pm)
  | None ->
    Printf.printf "  %-28s no complex pole: well damped\n" tag;
    (Float.nan, Float.nan)

let () =
  let base = Workloads.Opamp_2mhz.default_params in
  print_endline "Main-loop stability vs compensation (probe at the output, loop closed):";
  ignore (analyse "nominal (rz=1k c1=6.2p)" base);
  ignore (analyse "more load (cload=220p)" { base with cload = 220e-12 });
  ignore (analyse "no nulling R (rz~0)" { base with rzero = 1e-3 });
  ignore (analyse "bigger Miller (c1=15p)" { base with c1 = 15e-12 });
  let fixed = { base with c1 = 15e-12; rzero = 2e3; cload = 47e-12 } in
  let zeta_fixed, pm_fixed = analyse "proposed fix (c1=15p rz=2k cl=47p)" fixed in

  (* Cross-check the fix with the traditional methods. *)
  print_endline "\nCross-check of the fix against the traditional baselines:";
  let circ = Workloads.Opamp_2mhz.buffer ~params:fixed () in
  let dev, term = Workloads.Opamp_2mhz.feedback_break in
  let lg =
    Engine.Loopgain.middlebrook ~sweep:(Numerics.Sweep.decade 1e3 1e9 40)
      circ ~device:dev ~terminal:term
  in
  let m = Engine.Loopgain.margins lg in
  (match m.Engine.Measure.phase_margin_deg with
   | Some pm ->
     Printf.printf "  open-loop (Middlebrook):    PM = %.1f deg (stability plot said %.1f)\n"
       pm pm_fixed
   | None -> print_endline "  open-loop: no unity crossing");
  let tr = Engine.Transient.run ~tstop:8e-6 ~tstep:2e-9 circ in
  let w = Engine.Transient.v tr Workloads.Opamp_2mhz.node_out in
  let sm =
    Engine.Measure.step_metrics ~initial:fixed.Workloads.Opamp_2mhz.vcm
      ~final:(fixed.Workloads.Opamp_2mhz.vcm +. fixed.Workloads.Opamp_2mhz.step)
      w
  in
  Printf.printf
    "  transient step:             overshoot = %.0f%% (zeta %.2f predicts %.0f%%)\n"
    sm.Engine.Measure.overshoot_pct zeta_fixed
    (Control.Second_order.percent_overshoot zeta_fixed)
