(* Driving the tool through the OCEAN-style scripting layer (paper
   sections 5-6).

   The flow mirrors an OCEAN script: open a simulator session, load the
   design as text, bind design variables, configure analyses, run, and
   post-process with the waveform calculator — including computing the
   stability function by hand from calculator primitives. Session state is
   saved and restored, standing in for Analog Artist state files. Run:

     dune exec examples/ocean_scripting.exe *)

let deck = {|two-pole amplifier testbench
.param av=200 rload={rl}
VIN in 0 DC 0 AC 1
EAMP x1 0 in fb {av}
R1 x1 x2 1k
C1 x2 0 1n
R2 x2 x3 10k
C2 x3 0 100p
RFB x3 fb 1m
RL fb 0 {rload}
.end|}

let () =
  (* simulator() / design() / desVar() / analysis() *)
  let s = Tool.Ocean.simulator "spectre" in
  Tool.Ocean.design_text s deck;
  Tool.Ocean.des_var s "rl" 1e6;
  Tool.Ocean.analysis s (Tool.Session.Ac (Numerics.Sweep.decade 10. 1e8 30));
  Tool.Ocean.analysis s (Tool.Session.Stab_single "fb");

  (* run() *)
  let r = Tool.Ocean.run s in

  (* value() - style access plus calculator post-processing. *)
  let vfb = Tool.Ocean.v r "fb" in
  let gain_db = Tool.Calculator.(value_at (db20 (Freq vfb)) 10.) in
  Printf.printf "closed-loop gain at 10 Hz: %.2f dB\n" gain_db;

  (* The stability function out of calculator primitives (paper eq 1.3):
     on the probed response this is what the tool computes internally. *)
  let stab = Tool.Calculator.(apply "stab" (Freq vfb)) in
  Printf.printf "stability function of the closed-loop response at 5 kHz: %.2f\n"
    (Tool.Calculator.value_at stab 5e3);

  (* The built-in single-node analysis, via the same session. *)
  print_string (Tool.Ocean.stab_report r);

  (* Session state save / load (sevSaveState / sevLoadState stand-ins). *)
  let state_file = Filename.temp_file "ocean" ".state" in
  Tool.Session.save_state s state_file;
  let s2 = Tool.Ocean.simulator "spectre" in
  Tool.Session.load_state s2 state_file;
  Printf.printf "restored session: %d analyses, rl = %g\n"
    (List.length (Tool.Session.analyses s2))
    (List.assoc "rl" (Tool.Session.design_variables s2));
  Sys.remove state_file;

  (* Guarded execution: failures produce a structured diagnostic report
     (the "auto-generated support e-mail" substitute). *)
  (match
     Tool.Diagnostics.guard ~session:s ~operation:"bogus analysis"
       ~report_dir:(Filename.get_temp_dir_name ())
       (fun () -> failwith "synthetic failure for the demo")
   with
   | Ok _ -> ()
   | Error report ->
     Printf.printf "diagnostic captured: %s\n" report.Tool.Diagnostics.error)
