(* In-tool temperature sweeps (a paper "feature in development",
   implemented here).

   Two demonstrations on the zero-TC bias cell: the reference current is
   first-order flat over temperature (that is the cell's job), and the
   local loop's damping drifts with temperature — stability must be
   checked across the range, which is exactly why the paper wanted
   in-tool sweeps. Run with:

     dune exec examples/temp_sweep_zero_tc.exe *)

let () =
  let temps = [ -40.; 0.; 27.; 85.; 125. ] in
  print_endline "Reference current vs temperature (zero-TC check):";
  let i27 = Workloads.Bias_zero_tc.reference_current ~temp_c:27. () in
  List.iter
    (fun t ->
      let i = Workloads.Bias_zero_tc.reference_current ~temp_c:t () in
      Printf.printf "  %6.0f C: %sA (%+.1f%% vs 27 C)\n" t
        (Numerics.Engnum.format i)
        (100. *. ((i /. i27) -. 1.)))
    temps;

  print_endline "\nLocal-loop stability vs temperature (all-in-one sweep):";
  let circ = Workloads.Bias_zero_tc.cell () in
  let line = Workloads.Bias_zero_tc.node_bias_line in
  let outcomes =
    Tool.Corners.temp_sweep ~temps circ (fun c ->
        let r = Stability.Analysis.single_node c line in
        r.Stability.Analysis.dominant)
  in
  List.iter
    (fun (t, result) ->
      match result with
      | Ok (Some d) ->
        Printf.printf "  %6.0f C: peak %6.2f at %sHz%s\n" t
          d.Stability.Peaks.value
          (Numerics.Engnum.format d.Stability.Peaks.freq)
          (match d.Stability.Peaks.zeta with
           | Some z -> Printf.sprintf " (zeta %.2f)" z
           | None -> "")
      | Ok None -> Printf.printf "  %6.0f C: no complex pole\n" t
      | Error e -> Printf.printf "  %6.0f C: FAILED %s\n" t (Printexc.to_string e))
    outcomes;

  print_endline "\nProcess corners (tt/ff/ss) on the same loop:";
  let corners = [ Tool.Corners.typical; Tool.Corners.fast; Tool.Corners.slow ] in
  let by_corner =
    Tool.Corners.across corners circ (fun c ->
        let r = Stability.Analysis.single_node c line in
        r.Stability.Analysis.dominant)
  in
  List.iter
    (fun (name, result) ->
      match result with
      | Ok (Some d) ->
        Printf.printf "  %-3s: peak %6.2f at %sHz\n" name
          d.Stability.Peaks.value
          (Numerics.Engnum.format d.Stability.Peaks.freq)
      | Ok None -> Printf.printf "  %-3s: no complex pole\n" name
      | Error e -> Printf.printf "  %-3s: FAILED %s\n" name (Printexc.to_string e))
    by_corner
