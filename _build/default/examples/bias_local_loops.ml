(* Finding local instability loops in a bias circuit — the paper's Fig 5
   story.

   Black-box phase-margin analysis of the main loop says nothing about the
   bias cell; the all-nodes stability scan exposes its buffered-bias-line
   resonance immediately, and the paper's suggested fix (1 pF at the
   collector of Q3) is verified the same way. Run with:

     dune exec examples/bias_local_loops.exe *)

let scan tag params =
  Printf.printf "== %s ==\n" tag;
  let circ = Workloads.Bias_zero_tc.cell ~params () in
  let results = Stability.Analysis.all_nodes circ in
  let loops = Stability.Loops.cluster results in
  List.iter
    (fun l -> Format.printf "  %a@." Stability.Loops.pp l)
    loops;
  loops

let () =
  let p = Workloads.Bias_zero_tc.default_params in
  let before = scan "zero-TC bias cell, as designed" p in
  let worst =
    List.fold_left
      (fun acc (l : Stability.Loops.loop) ->
        match acc with
        | None -> Some l
        | Some best ->
          if l.worst.peak.Stability.Peaks.value
             < best.Stability.Loops.worst.peak.Stability.Peaks.value
          then Some l
          else Some best)
      None before
  in
  (match worst with
   | Some l ->
     Printf.printf
       "\nWorst local loop: %sHz through nets [%s] -- needs compensation.\n"
       (Numerics.Engnum.format l.Stability.Loops.natural_freq)
       (String.concat ", "
          (List.map
             (fun (m : Stability.Loops.member) -> m.Stability.Loops.node)
             l.Stability.Loops.members))
   | None -> print_endline "\nNo loops found (unexpected).");
  Printf.printf
    "\nApplying the paper's fix: 1 pF at the collector of Q3 (net %s)\n\n"
    Workloads.Bias_zero_tc.node_q3_collector;
  let after = scan "with compensation" { p with compensation = 1e-12 } in
  let deepest loops =
    List.fold_left
      (fun acc (l : Stability.Loops.loop) ->
        Float.min acc l.Stability.Loops.worst.peak.Stability.Peaks.value)
      0. loops
  in
  Printf.printf
    "\nDeepest peak before: %.2f; after: %.2f -- the loop is damped.\n"
    (deepest before) (deepest after)
