(* Designing nested Miller compensation with the stability tool.

   A three-stage NMC amplifier has two loops to budget: the outer
   unity-feedback loop (set by cm1) and the inner gm3/cm2 loop. The
   textbook Butterworth sizing is the starting point; this example uses the
   loop-tracking API to sweep each capacitor, watch both loops move, and
   read off the smallest capacitors that still meet a damping target —
   the workflow the paper's tool enables without ever breaking a loop.

   Run with: dune exec examples/nmc_design.exe *)

let () =
  let p = Workloads.Nmc_amp.butterworth () in
  Printf.printf
    "Butterworth start: cm1 = %sF, cm2 = %sF, GBW = %sHz\n\n"
    (Numerics.Engnum.format p.Workloads.Nmc_amp.cm1)
    (Numerics.Engnum.format p.Workloads.Nmc_amp.cm2)
    (Numerics.Engnum.format (Workloads.Nmc_amp.gbw_hz p));

  (* Sweep the inner Miller capacitor: too small and the inner loop rings
     well above the GBW. *)
  print_endline "cm2 sweep (inner-loop compensation), dominant pair at out:";
  let cm2_values =
    Array.map
      (fun scale -> p.Workloads.Nmc_amp.cm2 *. scale)
      [| 0.1; 0.2; 0.4; 0.7; 1.0; 1.5 |]
  in
  let traj_cm2 =
    Stability.Tracking.across
      ~build:(fun cm2 ->
        Workloads.Nmc_amp.buffer
          ~params:{ p with Workloads.Nmc_amp.cm2 } ())
      ~values:cm2_values ~node:"out" ()
  in
  Stability.Tracking.pp Format.std_formatter traj_cm2;
  (match Stability.Tracking.critical_value traj_cm2 ~zeta_target:0.35 with
   | Some v ->
     Printf.printf
       "\nsmallest cm2 with zeta >= 0.35: %sF (Butterworth uses %sF)\n\n"
       (Numerics.Engnum.format v)
       (Numerics.Engnum.format p.Workloads.Nmc_amp.cm2)
   | None -> print_endline "\ntarget never met in the swept range\n");

  (* Sweep the outer capacitor: bandwidth against damping. *)
  print_endline "cm1 sweep (outer loop): bandwidth vs damping:";
  let cm1_values =
    Array.map
      (fun scale -> p.Workloads.Nmc_amp.cm1 *. scale)
      [| 0.25; 0.5; 0.75; 1.0; 1.5; 2.0 |]
  in
  let traj_cm1 =
    Stability.Tracking.across
      ~build:(fun cm1 ->
        Workloads.Nmc_amp.buffer
          ~params:{ p with Workloads.Nmc_amp.cm1 } ())
      ~values:cm1_values ~node:"out" ()
  in
  Stability.Tracking.pp Format.std_formatter traj_cm1;

  (* Confirm the final design with exact poles. *)
  let final = Workloads.Nmc_amp.buffer ~params:p () in
  print_endline "\nexact poles of the Butterworth design:";
  List.iter
    (fun q -> Format.printf "  %a@." Engine.Poles.pp q)
    (Engine.Poles.complex_pairs (Engine.Poles.of_circuit final))
