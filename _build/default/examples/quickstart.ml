(* Quickstart: probe a circuit node for AC stability without breaking any
   loop.

   A parallel RLC tank is the smallest circuit with a complex pole pair:
   zeta = sqrt(L/C)/(2R) and fn = 1/(2 pi sqrt(LC)) are known exactly, so
   you can see the stability plot recover them. Run with:

     dune exec examples/quickstart.exe *)

let () =
  (* Circuits can come from SPICE text... *)
  let circ =
    Circuit.Parser.parse_string
      {|quickstart tank
R1 n 0 100
L1 n 0 1u
C1 n 0 1n
.end|}
  in
  (* ...or from the builder API (see Workloads.Filters for both styles). *)
  let fn, zeta = Workloads.Filters.parallel_rlc_theory ~r:100. ~l:1e-6 ~c:1e-9 () in
  Printf.printf "analytic:  fn = %sHz, zeta = %.4f, expected peak = %.1f\n"
    (Numerics.Engnum.format fn) zeta
    (Control.Second_order.performance_index zeta);

  (* Single-node mode: attach an AC current probe to net "n", sweep, build
     the stability plot (paper eq 1.3), detect and classify the peaks. *)
  let result = Stability.Analysis.single_node circ "n" in
  print_string (Stability.Report.single_node_string result);

  (* The dominant peak carries the damping and phase-margin estimates. *)
  match result.Stability.Analysis.dominant with
  | Some peak ->
    Printf.printf "measured:  fn = %sHz, peak = %.1f\n"
      (Numerics.Engnum.format peak.Stability.Peaks.freq)
      peak.Stability.Peaks.value
  | None -> print_endline "no complex pole found (unexpected!)"
