examples/temp_sweep_zero_tc.ml: List Numerics Printexc Printf Stability Tool Workloads
