examples/quickstart.mli:
