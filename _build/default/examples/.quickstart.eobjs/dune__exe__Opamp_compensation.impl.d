examples/opamp_compensation.ml: Control Engine Float Numerics Option Printf Stability Workloads
