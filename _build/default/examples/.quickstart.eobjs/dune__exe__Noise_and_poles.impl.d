examples/noise_and_poles.ml: Array Engine Format List Numerics Option Printf Stability Workloads
