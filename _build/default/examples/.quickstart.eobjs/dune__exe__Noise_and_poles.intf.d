examples/noise_and_poles.mli:
