examples/nmc_design.ml: Array Engine Format List Numerics Printf Stability Workloads
