examples/bias_local_loops.ml: Float Format List Numerics Printf Stability String Workloads
