examples/temp_sweep_zero_tc.mli:
