examples/nmc_design.mli:
