examples/ocean_scripting.mli:
