examples/follower_instability.ml: List Numerics Printf Stability Workloads
