examples/follower_instability.mli:
