examples/bias_local_loops.mli:
