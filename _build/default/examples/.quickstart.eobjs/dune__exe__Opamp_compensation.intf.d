examples/opamp_compensation.mli:
