examples/quickstart.ml: Circuit Control Numerics Printf Stability Workloads
