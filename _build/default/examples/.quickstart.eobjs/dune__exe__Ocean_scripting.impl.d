examples/ocean_scripting.ml: Filename List Numerics Printf Sys Tool
